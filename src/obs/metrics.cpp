#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ds::obs {

namespace {
/// Bucket index: 0 holds [0,1), bucket i>0 holds [2^(i-1), 2^i).
[[nodiscard]] int bucket_of(double v) noexcept {
  if (!(v >= 1.0)) return 0;  // negatives and NaN clamp to the first bucket
  const int b = std::ilogb(v) + 1;
  return b >= 64 ? 63 : b;
}
}  // namespace

void Histogram::add(double v) noexcept {
  if (v < 0 || std::isnan(v)) v = 0;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  ++buckets_[bucket_of(v)];
}

double Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= target && buckets_[b] > 0) {
      const double upper = b == 0 ? 1.0 : std::ldexp(1.0, b);
      return std::clamp(upper, min_, max_);
    }
  }
  return max_;
}

Counter& Metrics::counter(const std::string& name, int rank) {
  return counters_[Key{name, rank}];
}
Gauge& Metrics::gauge(const std::string& name, int rank) {
  return gauges_[Key{name, rank}];
}
Histogram& Metrics::histogram(const std::string& name, int rank) {
  return histograms_[Key{name, rank}];
}

const Counter* Metrics::find_counter(const std::string& name, int rank) const {
  const auto it = counters_.find(Key{name, rank});
  return it == counters_.end() ? nullptr : &it->second;
}
const Gauge* Metrics::find_gauge(const std::string& name, int rank) const {
  const auto it = gauges_.find(Key{name, rank});
  return it == gauges_.end() ? nullptr : &it->second;
}
const Histogram* Metrics::find_histogram(const std::string& name,
                                         int rank) const {
  const auto it = histograms_.find(Key{name, rank});
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t Metrics::counter_total(const std::string& name) const {
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(Key{name, kMachine});
       it != counters_.end() && it->first.first == name; ++it)
    total += it->second.value();
  return total;
}

void Metrics::add_collector(std::function<void(Metrics&)> fn) {
  collectors_.push_back(std::move(fn));
}

void Metrics::collect() {
  for (const auto& fn : collectors_) fn(*this);
}

namespace {
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
  }
}
void append_number(std::string& out, double v) {
  char buf[48];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else if (std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "%.9g", v);
  } else {
    std::snprintf(buf, sizeof buf, "0");
  }
  out += buf;
}
}  // namespace

std::string Metrics::to_json() {
  collect();
  std::string out = "{\"schema\":\"ds.metrics.v1\",\"counters\":[";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    append_escaped(out, key.first);
    out += "\",\"rank\":" + std::to_string(key.second) +
           ",\"value\":" + std::to_string(c.value()) + "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& [key, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    append_escaped(out, key.first);
    out += "\",\"rank\":" + std::to_string(key.second) + ",\"value\":";
    append_number(out, g.value());
    out += "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& [key, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    append_escaped(out, key.first);
    out += "\",\"rank\":" + std::to_string(key.second) +
           ",\"count\":" + std::to_string(h.count()) + ",\"sum\":";
    append_number(out, h.sum());
    out += ",\"min\":";
    append_number(out, h.min());
    out += ",\"max\":";
    append_number(out, h.max());
    out += ",\"p50\":";
    append_number(out, h.percentile(0.50));
    out += ",\"p90\":";
    append_number(out, h.percentile(0.90));
    out += ",\"p99\":";
    append_number(out, h.percentile(0.99));
    out += "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace ds::obs
