// Span/instant recorder: the trace half of ds::obs.
//
// The recorder collects, per rank, a chronological log of span begin/end
// events (nesting preserved by stack discipline) and instant events (the
// resilience path's crash/failover/handoff/rejoin/agreement markers). It
// subsumes the old sim::TraceRecorder: the same begin/end call shape, plus
// a SpanKind taxonomy, instants, and exporters — Chrome trace-event JSON
// for Perfetto/chrome://tracing, CSV, and the ASCII timeline with a
// deterministic glyph legend.
//
// Timestamps are engine virtual time, which is nondecreasing, so the raw
// event log is monotone per track by construction; the Chrome exporter
// emits it verbatim and the B/E pairs balance because end() ignores (and
// counts) mismatched ends and close_all()/the exporter close anything still
// open. tools/check_trace.py validates exactly this contract in CI.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "util/time.hpp"

namespace ds::obs {

/// A completed [begin, end) interval on one rank's track. `depth` is the
/// nesting level at which the span was opened (0 = top level).
struct Span {
  int rank = 0;
  util::SimTime begin = 0;
  util::SimTime end = 0;
  std::string label;
  SpanKind kind = SpanKind::Other;
  int depth = 0;
};

/// A zero-duration marker on one rank's track (crash, failover, ...).
struct Instant {
  int rank = 0;
  util::SimTime at = 0;
  std::string name;
};

class Recorder {
 public:
  /// Open a labeled span on `rank` at time `t`. Spans may nest; the
  /// innermost open span is the one closed by end(). Labels are typically
  /// string literals; they are copied.
  void begin(int rank, util::SimTime t, std::string label,
             SpanKind kind = SpanKind::Other);
  /// Hot-path overload: a `label` with static storage duration (string
  /// literal) interns by pointer identity first, so the per-span cost is a
  /// pointer scan plus one event append — no string construction.
  void begin(int rank, util::SimTime t, const char* label,
             SpanKind kind = SpanKind::Other) {
    if (rank < 0) return;
    push_begin(rank, t, intern(label), kind);
  }
  /// Close the innermost open span on `rank` at time `t`. A mismatched end
  /// (nothing open) is ignored and counted in dropped_ends().
  void end(int rank, util::SimTime t);
  /// Record an instant event on `rank`'s track at time `t`.
  void instant(int rank, util::SimTime t, std::string name);
  void instant(int rank, util::SimTime t, const char* name);
  /// Close every span still open on `rank` at time `t` (crash unwinding:
  /// a fail-stopped fiber never reaches its end() calls).
  void close_all(int rank, util::SimTime t);

  /// Completed spans in end order. Materialized lazily from the raw event
  /// log (recording only appends events, keeping the hot path cheap).
  [[nodiscard]] const std::vector<Span>& intervals() const {
    return materialized();
  }
  [[nodiscard]] const std::vector<Instant>& instants() const noexcept {
    return instants_;
  }
  /// end() calls that found no open span (mismatch diagnostics).
  [[nodiscard]] std::uint64_t dropped_ends() const noexcept { return dropped_ends_; }
  /// Spans currently open on `rank` (nesting depth).
  [[nodiscard]] std::size_t open_depth(int rank) const noexcept;

  /// Total recorded time on `rank` across spans whose label matches.
  [[nodiscard]] util::SimTime total(int rank, const std::string& label) const;
  /// Total recorded time on `rank` across spans of `kind`.
  [[nodiscard]] util::SimTime total(int rank, SpanKind kind) const;

  [[nodiscard]] std::string to_csv() const;

  /// One text row per rank; each column is a time bucket filled with the
  /// glyph of the dominant label ('.' = idle). `width` buckets span
  /// [0, makespan]. Glyphs are assigned deterministically in first-recorded
  /// order — the label's first free character, then the next free letter —
  /// and a legend line maps every glyph back to its label, so two labels
  /// sharing a first letter never render identically.
  [[nodiscard]] std::string to_ascii(int width = 96) const;

  /// Chrome trace-event JSON (loads in Perfetto and chrome://tracing).
  /// One track per rank (pid 0, tid = rank, named "rank N"), duration
  /// events ("B"/"E") for spans with nesting preserved, instant events
  /// ("i", thread scope) for the resilience markers. `ts` is microseconds
  /// of virtual time (the trace-event unit); spans still open at the end
  /// of the log are closed at the latest recorded time.
  [[nodiscard]] std::string to_chrome_json() const;

  void clear();

 private:
  /// Raw chronological event log (engine time is nondecreasing, so this is
  /// monotone per rank): the Chrome exporter replays it verbatim.
  struct RawEvent {
    enum class Type : std::uint8_t { Begin, End, Instant };
    Type type;
    SpanKind kind;
    int rank;
    util::SimTime t;
    std::uint32_t name;  ///< index into names_ (Begin/Instant; unused on End)
  };
  struct Open {
    util::SimTime begin;
    std::uint32_t name;
    SpanKind kind;
  };

  std::uint32_t intern(std::string name);
  std::uint32_t intern(const char* name);
  void push_begin(int rank, util::SimTime t, std::uint32_t name, SpanKind kind);
  /// Rebuild spans_cache_ from events_ if recording dirtied it.
  const std::vector<Span>& materialized() const;

  std::vector<std::string> names_;  ///< interned labels (events reference them)
  /// Pointer-identity fast path for literal labels: one entry per distinct
  /// call-site string, scanned linearly (a handful of entries).
  std::vector<std::pair<const char*, std::uint32_t>> ptr_ids_;
  std::vector<RawEvent> events_;
  std::vector<Instant> instants_;
  std::vector<std::vector<Open>> open_;  ///< per-rank open stacks
  std::uint64_t dropped_ends_ = 0;
  mutable std::vector<Span> spans_cache_;  ///< completed, in end order
  mutable bool spans_dirty_ = false;
};

}  // namespace ds::obs
