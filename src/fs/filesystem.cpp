#include "fs/filesystem.hpp"

#include <algorithm>
#include <cstring>

namespace ds::fs {

void SimFile::store(std::uint64_t offset, const void* data, std::uint64_t bytes) {
  note_extent(offset, bytes);
  if (!data || bytes == 0) return;
  auto& chunk = chunks_[offset];
  chunk.resize(bytes);
  std::memcpy(chunk.data(), data, bytes);
}

std::vector<std::byte> SimFile::content() const {
  std::vector<std::byte> out(size_, std::byte{0});
  for (const auto& [offset, chunk] : chunks_) {
    const std::uint64_t n = std::min<std::uint64_t>(chunk.size(), size_ - offset);
    std::memcpy(out.data() + offset, chunk.data(), n);
  }
  return out;
}

FileSystem::FileSystem(FsConfig config)
    : config_(config),
      server_free_(static_cast<std::size_t>(std::max(1, config.num_servers)), 0) {}

SimFile* FileSystem::open(const std::string& name) {
  auto [it, inserted] = files_.try_emplace(name, name);
  return &it->second;
}

util::SimTime FileSystem::write(SimFile& file, std::uint64_t offset,
                                std::uint64_t bytes, const void* data,
                                util::SimTime start) {
  file.store(offset, data, bytes);
  total_bytes_ += bytes;
  ++total_requests_;
  if (bytes == 0) return start + config_.op_latency;

  // Walk the stripes the byte range covers; each stripe's server serializes.
  util::SimTime done = start;
  std::uint64_t cursor = offset;
  const std::uint64_t end = offset + bytes;
  while (cursor < end) {
    const std::uint64_t stripe_index = cursor / config_.stripe_bytes;
    const std::uint64_t stripe_end = (stripe_index + 1) * config_.stripe_bytes;
    const std::uint64_t chunk = std::min(end, stripe_end) - cursor;
    auto& server = server_free_[static_cast<std::size_t>(
        stripe_index % static_cast<std::uint64_t>(server_free_.size()))];
    const util::SimTime begin = std::max(start + config_.op_latency, server);
    const auto service = static_cast<util::SimTime>(
        config_.server_ns_per_byte * static_cast<double>(chunk));
    server = begin + config_.server_op_service + service;
    done = std::max(done, server);
    cursor += chunk;
  }
  return done;
}

util::SimTime FileSystem::metadata_rpc(util::SimTime start) {
  ++total_requests_;
  const util::SimTime begin = std::max(start + config_.metadata_latency, mds_free_);
  mds_free_ = begin + config_.metadata_service;
  return mds_free_ + config_.metadata_latency;  // reply wire time
}

FileSystem::SharedAppendResult FileSystem::shared_append(SimFile& file,
                                                         std::uint64_t bytes,
                                                         const void* data,
                                                         util::SimTime start) {
  // Acquire the shared pointer (serialized at the MDS), then write the data.
  const util::SimTime lock_done = metadata_rpc(start);
  const std::uint64_t offset = file.reserve_shared(bytes);
  const util::SimTime done = write(file, offset, bytes, data, lock_done);
  return SharedAppendResult{offset, done};
}

}  // namespace ds::fs
