// Parallel file-system model (Lustre-like).
//
// The particle-I/O experiment (paper Sec. IV-D2, Fig. 8) depends on three
// mechanisms, all modeled here:
//
//  * striped object servers — a write occupies the servers its byte range
//    stripes over; servers serialize requests, so many clients writing small
//    records queue behind each other;
//  * a metadata server — every independent operation pays an RPC that
//    serializes at the MDS; file-view (re)definition is metadata traffic;
//  * a shared-file-pointer lock — MPI_File_write_shared must atomically
//    advance a global pointer, one client at a time, before data moves.
//
// Completion times are returned to callers (fibers decide how to wait);
// server/MDS occupancy is mutated immediately, which is correct because the
// discrete-event engine hands out nondecreasing `start` times.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace ds::fs {

struct FsConfig {
  int num_servers = 16;                    ///< object storage targets
  double server_ns_per_byte = 1.0;         ///< 1 GB/s per OST
  util::SimTime op_latency = util::microseconds(50);        ///< per request
  /// Server occupancy per (request, stripe): request setup, allocation,
  /// journal. This is what makes many small writes slower than few big ones.
  util::SimTime server_op_service = util::microseconds(100);
  util::SimTime metadata_latency = util::microseconds(20);  ///< MDS RPC wire+queue
  /// MDS per-op service. Shared-file-pointer updates serialize here; under
  /// contention a Lustre-class lock round trip is hundreds of microseconds.
  util::SimTime metadata_service = util::microseconds(200);
  std::uint64_t stripe_bytes = 1 << 20;    ///< striping unit

  [[nodiscard]] static FsConfig lustre_like() noexcept { return {}; }
};

/// One shared file: a byte extent plus (optionally) recorded content.
/// Content is kept only for real payloads so tests can verify that all three
/// write paths produce equivalent files; synthetic writes track size alone.
class SimFile {
 public:
  explicit SimFile(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  /// Atomically reserve `bytes` at the shared pointer; returns the offset.
  [[nodiscard]] std::uint64_t reserve_shared(std::uint64_t bytes) noexcept {
    const std::uint64_t at = shared_pointer_;
    shared_pointer_ += bytes;
    size_ = std::max(size_, shared_pointer_);
    return at;
  }

  void note_extent(std::uint64_t offset, std::uint64_t bytes) noexcept {
    size_ = std::max(size_, offset + bytes);
  }

  /// Base offset for collective write epoch `epoch` appending `total` bytes.
  /// The first caller allocates; later callers (other ranks of the same
  /// collective) observe the same base. Requires identical `total` per epoch.
  [[nodiscard]] std::uint64_t claim_collective(std::uint64_t epoch,
                                               std::uint64_t total) {
    auto [it, inserted] = collective_bases_.try_emplace(epoch, collective_end_);
    if (inserted) {
      collective_end_ += total;
      size_ = std::max(size_, collective_end_);
    }
    return it->second;
  }

  void store(std::uint64_t offset, const void* data, std::uint64_t bytes);

  /// Reassembled content (gaps zero-filled); for tests.
  [[nodiscard]] std::vector<std::byte> content() const;

 private:
  std::string name_;
  std::uint64_t size_ = 0;
  std::uint64_t shared_pointer_ = 0;
  std::uint64_t collective_end_ = 0;
  std::map<std::uint64_t, std::uint64_t> collective_bases_;
  std::map<std::uint64_t, std::vector<std::byte>> chunks_;
};

class FileSystem {
 public:
  explicit FileSystem(FsConfig config);

  /// Open (or create) a file by name; returned pointer stays valid for the
  /// FileSystem's lifetime.
  [[nodiscard]] SimFile* open(const std::string& name);

  /// Write `bytes` at `offset`, first touching the wire at `start`.
  /// Returns the completion time. `data` may be null (synthetic).
  util::SimTime write(SimFile& file, std::uint64_t offset, std::uint64_t bytes,
                      const void* data, util::SimTime start);

  /// One metadata RPC (view definition, open, stat) issued at `start`;
  /// returns its completion time. Serializes at the MDS.
  util::SimTime metadata_rpc(util::SimTime start);

  /// Shared-pointer append: MDS lock + pointer advance, then data write.
  /// Returns {assigned offset, completion time}.
  struct SharedAppendResult {
    std::uint64_t offset;
    util::SimTime complete_at;
  };
  SharedAppendResult shared_append(SimFile& file, std::uint64_t bytes,
                                   const void* data, util::SimTime start);

  [[nodiscard]] const FsConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t total_bytes_written() const noexcept { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_requests() const noexcept { return total_requests_; }

 private:
  FsConfig config_;
  std::vector<util::SimTime> server_free_;
  util::SimTime mds_free_ = 0;
  std::map<std::string, SimFile> files_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_requests_ = 0;
};

}  // namespace ds::fs
