#include "mpi/comm.hpp"

// Comm is header-only today; this TU anchors the target and keeps room for
// out-of-line growth (attribute caching, error handlers).
