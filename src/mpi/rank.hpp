// Per-rank facade: the API simulated application code programs against.
//
// A Rank is handed to the program body of every simulated process (fiber).
// Point-to-point calls charge CPU overheads to the calling fiber and go
// through the Machine's matching engine; collectives are event-driven state
// machines (see collectives.cpp) so their communication overlaps with the
// fiber's compute — the property the paper's nonblocking baselines rely on.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/machine.hpp"
#include "mpi/ops.hpp"
#include "mpi/types.hpp"
#include "sim/engine.hpp"

namespace ds::mpi {

/// Outcome of Rank::agree: the agreed value plus the consistent failure
/// view every participant observes. All survivors of one agree() call
/// return the exact same triple (the ledger freezes it exactly once), which
/// is what lets them rebuild a shrunken membership without further
/// coordination.
struct AgreeResult {
  std::uint64_t value = 0;     ///< OR over every deposited contribution
  std::vector<int> survivors;  ///< world ranks alive at the freeze
  std::vector<int> failed;     ///< world ranks dead at the freeze
  [[nodiscard]] bool clean() const noexcept { return failed.empty(); }
};

class Rank {
 public:
  Rank(Machine& machine, sim::Process& process, int world_rank)
      : machine_(&machine), process_(&process), world_rank_(world_rank) {}

  // ---- identity & machine access ----
  [[nodiscard]] int world_rank() const noexcept { return world_rank_; }
  [[nodiscard]] int world_size() const noexcept { return machine_->world_size(); }
  [[nodiscard]] const Comm& world() const noexcept { return machine_->world(); }
  [[nodiscard]] sim::Process& process() noexcept { return *process_; }
  [[nodiscard]] Machine& machine() noexcept { return *machine_; }
  [[nodiscard]] util::SimTime now() const noexcept { return machine_->engine().now(); }
  /// This rank's number in `comm`, or -1 if not a member.
  [[nodiscard]] int rank_in(const Comm& comm) const noexcept {
    return comm.rank_of_world(world_rank_);
  }

  /// Busy the rank for `nominal` virtual time, noise-perturbed and traced.
  void compute(util::SimTime nominal, const char* label = "comp") {
    machine_->ensure_alive(world_rank_);
    process_->compute(nominal, label);
  }

  /// True once fault injection has crashed this rank. RAII cleanup that runs
  /// while a crashed fiber unwinds (channel release, stream termination)
  /// checks this and backs off instead of starting new communication.
  [[nodiscard]] bool failed() const noexcept {
    return machine_->rank_failed(world_rank_);
  }
  /// Fiber (re)starts of this rank: 0 for the original incarnation.
  [[nodiscard]] int incarnation() const noexcept {
    return machine_->incarnation(world_rank_);
  }

  // ---- point-to-point ----
  /// Start a send; completes when the payload (eager) or handshake+payload
  /// (rendezvous) has left this rank. Charges sender overhead o_s now.
  Request isend(const Comm& comm, int dst, int tag, SendBuf data);
  /// Start a receive from `src` (or kAnySource) with `tag` (or kAnyTag).
  Request irecv(const Comm& comm, int src, int tag, RecvBuf out);

  void send(const Comm& comm, int dst, int tag, SendBuf data);
  Status recv(const Comm& comm, int src, int tag, RecvBuf out);
  /// Combined send+recv, deadlock-free regardless of peer order.
  Status sendrecv(const Comm& comm, int dst, int send_tag, SendBuf data,
                  int src, int recv_tag, RecvBuf out);

  /// Block until `req` completes. Charges receiver overhead o_r exactly once
  /// for receive requests.
  void wait(const Request& req);
  /// Nonblocking completion check (charges o_r on first true for receives).
  bool test(const Request& req);
  void wait_all(std::span<const Request> reqs);
  /// Block until any completes; returns its index.
  std::size_t wait_any(std::span<const Request> reqs);

  /// Block until a matching message has arrived (not consumed).
  Status probe(const Comm& comm, int src, int tag);
  bool iprobe(const Comm& comm, int src, int tag, Status* status = nullptr);

  // ---- collectives (all members of `comm` must call, in the same order) ----
  //
  // All collectives are failure-aware: a peer crash never hangs them.
  // Expected messages from a rank that crashes are satisfied by failure,
  // the round schedule runs to structural completion, and the outcome
  // (blocking return value / Request's status) carries `failed = true` on
  // every member that observed the crash. Outcomes may differ across ranks
  // when the crash races the last rounds (ULFM semantics); survivors that
  // must act consistently settle the view with agree() first. Data results
  // of a failed collective are undefined.
  Status barrier(const Comm& comm);
  Request ibarrier(const Comm& comm);

  /// Broadcast `data` (significant at root) to all members.
  Status bcast(const Comm& comm, int root, RecvBuf data);
  Request ibcast(const Comm& comm, int root, RecvBuf data);

  /// Reduce elementwise into `out` at root. `fn` combines byte buffers; null
  /// `in.ptr` or `out` runs the collective with synthetic payloads.
  Status reduce(const Comm& comm, int root, SendBuf in, void* out, ReduceFn fn);
  Request ireduce(const Comm& comm, int root, SendBuf in, void* out, ReduceFn fn);

  Status allreduce(const Comm& comm, SendBuf in, void* out, ReduceFn fn);
  Request iallreduce(const Comm& comm, SendBuf in, void* out, ReduceFn fn);

  /// Gather variable-size blocks from all ranks into `out` on every rank.
  /// `counts[r]` is rank r's block size in bytes; block r lands at offset
  /// sum(counts[0..r)). `mine.bytes` must equal `counts[my rank]`.
  Status allgatherv(const Comm& comm, SendBuf mine, void* out,
                    const std::vector<std::size_t>& counts);
  Request iallgatherv(const Comm& comm, SendBuf mine, void* out,
                      const std::vector<std::size_t>& counts);

  /// Variable all-to-all; `send_counts[r]`/`recv_counts[r]` are byte counts
  /// to/from rank r, packed contiguously in rank order. As with
  /// MPI_Ialltoallv, the count arrays must stay valid until completion.
  Status alltoallv(const Comm& comm, const void* send_buf,
                   const std::vector<std::size_t>& send_counts, void* recv_buf,
                   const std::vector<std::size_t>& recv_counts);
  Request ialltoallv(const Comm& comm, const void* send_buf,
                     const std::vector<std::size_t>& send_counts, void* recv_buf,
                     const std::vector<std::size_t>& recv_counts);

  /// Gather variable-size blocks to `root` only.
  Status gatherv(const Comm& comm, int root, SendBuf mine, void* out,
                 const std::vector<std::size_t>& counts);

  /// Fault-tolerant agreement (ULFM-shrink style). Every live member of
  /// `comm` deposits `contribution` into a shared ledger and runs log-P
  /// failure-aware synchronization rounds; the call returns once every
  /// member has either deposited or crashed. The result — OR over all
  /// deposited contributions plus the dead/survivor view at the freeze —
  /// is identical on every participant, tolerating crashes at any point
  /// mid-agreement (each deposit or crash strictly advances the freeze
  /// condition). Like collectives, concurrent agreements on one
  /// communicator must be issued in the same order on every member.
  AgreeResult agree(const Comm& comm, std::uint64_t contribution = 0);

  /// Partition `comm` by color; ranks order by (key, old rank). Negative
  /// color returns an invalid Comm (MPI_UNDEFINED semantics).
  Comm split(const Comm& comm, int color, int key);

 private:
  friend class File;
  /// Reserved tag for the next collective on `comm` (same value on every
  /// member because collectives are called in communicator order).
  int next_coll_tag(const Comm& comm);
  void charge_recv_overhead(const Request& req);

  Machine* machine_;
  sim::Process* process_;
  int world_rank_;
  std::map<std::uint64_t, std::uint64_t> coll_seq_;
  std::map<std::uint64_t, std::uint64_t> split_seq_;
  std::map<std::uint64_t, std::uint64_t> agree_seq_;
};

}  // namespace ds::mpi
