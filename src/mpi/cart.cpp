#include "mpi/cart.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace ds::mpi {

CartTopology::CartTopology(std::array<int, 3> dims, std::array<bool, 3> periodic)
    : dims_(dims), periodic_(periodic) {
  for (const int d : dims_)
    if (d <= 0) throw std::invalid_argument("CartTopology: dims must be > 0");
}

std::array<int, 3> CartTopology::dims_create(int nprocs) {
  if (nprocs <= 0) throw std::invalid_argument("dims_create: nprocs must be > 0");
  std::array<int, 3> dims{1, 1, 1};
  int remaining = nprocs;
  // Repeatedly peel the largest prime factor onto the smallest dimension.
  auto smallest_dim = [&dims]() {
    int idx = 0;
    for (int i = 1; i < 3; ++i)
      if (dims[static_cast<std::size_t>(i)] < dims[static_cast<std::size_t>(idx)]) idx = i;
    return idx;
  };
  while (remaining > 1) {
    int factor = remaining;
    for (int p = 2; p * p <= remaining; ++p) {
      if (remaining % p == 0) {
        factor = p;
        break;
      }
    }
    dims[static_cast<std::size_t>(smallest_dim())] *= factor;
    remaining /= factor;
  }
  // Sort descending for a stable convention (DimX >= DimY >= DimZ).
  std::sort(dims.begin(), dims.end(), std::greater<>());
  return dims;
}

int CartTopology::rank_of(const std::array<int, 3>& coords) const {
  for (int i = 0; i < 3; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (coords[idx] < 0 || coords[idx] >= dims_[idx])
      throw std::out_of_range("CartTopology::rank_of: coordinate out of range");
  }
  return (coords[0] * dims_[1] + coords[1]) * dims_[2] + coords[2];
}

std::array<int, 3> CartTopology::coords_of(int rank) const {
  if (rank < 0 || rank >= size())
    throw std::out_of_range("CartTopology::coords_of: rank out of range");
  std::array<int, 3> c{};
  c[2] = rank % dims_[2];
  c[1] = (rank / dims_[2]) % dims_[1];
  c[0] = rank / (dims_[1] * dims_[2]);
  return c;
}

int CartTopology::neighbor(int rank, int dim, int disp) const {
  if (dim < 0 || dim >= 3) throw std::out_of_range("CartTopology::neighbor: bad dim");
  auto coords = coords_of(rank);
  const auto idx = static_cast<std::size_t>(dim);
  int c = coords[idx] + disp;
  if (periodic_[idx]) {
    const int n = dims_[idx];
    c = ((c % n) + n) % n;
  } else if (c < 0 || c >= dims_[idx]) {
    return -1;
  }
  coords[idx] = c;
  return rank_of(coords);
}

std::array<int, 6> CartTopology::face_neighbors(int rank) const {
  return {neighbor(rank, 0, -1), neighbor(rank, 0, +1),
          neighbor(rank, 1, -1), neighbor(rank, 1, +1),
          neighbor(rank, 2, -1), neighbor(rank, 2, +1)};
}

std::vector<int> CartTopology::moore_neighbors(int rank) const {
  const auto base = coords_of(rank);
  std::vector<int> result;
  for (int dx = -1; dx <= 1; ++dx)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dz = -1; dz <= 1; ++dz) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        std::array<int, 3> c{base[0] + dx, base[1] + dy, base[2] + dz};
        bool inside = true;
        for (int d = 0; d < 3; ++d) {
          const auto idx = static_cast<std::size_t>(d);
          if (periodic_[idx]) {
            c[idx] = ((c[idx] % dims_[idx]) + dims_[idx]) % dims_[idx];
          } else if (c[idx] < 0 || c[idx] >= dims_[idx]) {
            inside = false;
            break;
          }
        }
        if (!inside) continue;
        const int r = rank_of(c);
        if (r != rank) result.push_back(r);
      }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace ds::mpi
