#include "mpi/datatype.hpp"

#include <cstring>
#include <stdexcept>

namespace ds::mpi {

Datatype Datatype::bytes(std::size_t n, std::string name) {
  Datatype t(std::move(name), n, n);
  if (n > 0) t.segments_.push_back(Segment{0, n});
  return t;
}

Datatype Datatype::int32() { return bytes(4, "int32"); }
Datatype Datatype::int64() { return bytes(8, "int64"); }
Datatype Datatype::float64() { return bytes(8, "float64"); }

Datatype Datatype::contiguous(std::size_t count, const Datatype& base) {
  return vector(count, 1, 1, base);
}

Datatype Datatype::vector(std::size_t count, std::size_t block_len,
                          std::size_t stride, const Datatype& base) {
  if (stride < block_len)
    throw std::invalid_argument("Datatype::vector: stride < block_len");
  Datatype t(base.name_ + "[v]", count * block_len * base.size_,
             count == 0 ? 0 : ((count - 1) * stride + block_len) * base.extent_);
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t block_base = c * stride * base.extent_;
    for (std::size_t b = 0; b < block_len; ++b) {
      const std::size_t elem_base = block_base + b * base.extent_;
      for (const auto& seg : base.segments_) {
        const Segment shifted{elem_base + seg.mem_offset, seg.length};
        if (!t.segments_.empty() &&
            t.segments_.back().mem_offset + t.segments_.back().length ==
                shifted.mem_offset) {
          t.segments_.back().length += shifted.length;  // merge adjacent runs
        } else {
          t.segments_.push_back(shifted);
        }
      }
    }
  }
  return t;
}

Datatype Datatype::record(const std::vector<DatatypeField>& fields,
                          std::size_t extent, std::string name) {
  std::size_t size = 0;
  for (const auto& f : fields) size += f.type.size();
  Datatype t(std::move(name), size, extent);
  for (const auto& f : fields) {
    for (const auto& seg : f.type.segments_) {
      const Segment shifted{f.offset + seg.mem_offset, seg.length};
      if (shifted.mem_offset + shifted.length > extent)
        throw std::invalid_argument("Datatype::record: field exceeds extent");
      if (!t.segments_.empty() &&
          t.segments_.back().mem_offset + t.segments_.back().length ==
              shifted.mem_offset) {
        t.segments_.back().length += shifted.length;
      } else {
        t.segments_.push_back(shifted);
      }
    }
  }
  return t;
}

void Datatype::pack(const std::byte* src, std::byte* dst) const {
  std::size_t wire = 0;
  for (const auto& seg : segments_) {
    std::memcpy(dst + wire, src + seg.mem_offset, seg.length);
    wire += seg.length;
  }
}

void Datatype::unpack(const std::byte* src, std::byte* dst) const {
  std::size_t wire = 0;
  for (const auto& seg : segments_) {
    std::memcpy(dst + seg.mem_offset, src + wire, seg.length);
    wire += seg.length;
  }
}

}  // namespace ds::mpi
