// Internal operation states for the message-passing runtime.
//
// Every asynchronous operation (send, receive, nonblocking collective) is a
// heap-allocated state object shared between the issuing fiber, the matching
// engine, and scheduled events. Completion both wakes a waiting fiber (for
// Rank::wait) and fires an event-context continuation (for collective state
// machines) — the two mechanisms never conflict.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "mpi/types.hpp"

namespace ds::mpi {

namespace detail {

struct OpState {
  bool complete = false;
  int waiter_pid = -1;                ///< fiber to wake on completion
  std::function<void()> on_complete;  ///< event-context continuation
  Status status{};                    ///< filled in for receive-like ops
  virtual ~OpState() = default;
};

enum class SendMode { Eager, Rendezvous };

struct SendOp final : OpState {
  std::uint64_t context = 0;
  int src_comm_rank = 0;  ///< sender's rank in the communicator
  int src_world = 0;
  int dst_world = 0;
  int tag = 0;
  std::vector<std::byte> payload;  ///< empty for synthetic messages
  std::size_t bytes = 0;           ///< wire size
  SendMode mode = SendMode::Eager;
};

struct RecvOp final : OpState {
  std::uint64_t context = 0;
  int dst_world = 0;
  int src_filter = kAnySource;  ///< comm rank or kAnySource
  int tag_filter = kAnyTag;
  void* out = nullptr;
  std::size_t capacity = 0;
  bool overhead_charged = false;  ///< o_r charged at observation, once
};

/// Per-world-rank matching state: unexpected arrivals and posted receives,
/// both in order, per MPI matching semantics.
struct Mailbox {
  std::deque<std::shared_ptr<SendOp>> unexpected;
  std::deque<std::shared_ptr<RecvOp>> posted;
  std::vector<int> probe_waiters;  ///< pids to wake on any new arrival
};

[[nodiscard]] inline bool matches(const RecvOp& r, const SendOp& s) noexcept {
  return r.context == s.context &&
         (r.src_filter == kAnySource || r.src_filter == s.src_comm_rank) &&
         (r.tag_filter == kAnyTag || r.tag_filter == s.tag);
}

}  // namespace detail

/// Public handle to any asynchronous operation.
using Request = std::shared_ptr<detail::OpState>;

}  // namespace ds::mpi
