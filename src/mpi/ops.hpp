// Internal operation states for the message-passing runtime.
//
// Every asynchronous operation (send, receive, nonblocking collective) is a
// state object shared between the issuing fiber, the matching engine, and
// scheduled events. Completion both wakes a waiting fiber (for Rank::wait)
// and fires an event-context continuation (for collective state machines) —
// the two mechanisms never conflict.
//
// Hot-path design (the simulate-one-element path must not allocate):
//  * SendOp/RecvOp are intrusively reference-counted and come from per-type
//    freelist pools owned by the Machine. Handles (OpRef / Request), queue
//    slots, and scheduled events each hold a reference; when the last drops,
//    the op returns to its pool's freelist with its generation counter
//    bumped — a completed op is reused across the run, never reallocated,
//    and a still-held handle pins its op so it cannot be resurrected into a
//    live request underneath the holder.
//  * Eager-class payloads are stored in a small buffer inside the pooled op
//    (kInlineBytes); larger payloads use an overflow vector whose capacity
//    survives recycling, so even rendezvous-class reuse is allocation-free
//    in steady state.
//  * Matching state is bucketed per context id (communicator / stream), so
//    concurrent streams on one rank never scan each other's traffic.
//  * Collective state machines remain individually heap-allocated (pool ==
//    nullptr => delete on last release): they are per-collective, not
//    per-element.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "mpi/types.hpp"
#include "sim/callback.hpp"

namespace ds::mpi {

namespace detail {

class OpPoolBase;

enum class OpKind : std::uint8_t { Send, Recv, Coll };

struct OpState {
  OpKind kind = OpKind::Coll;
  bool complete = false;
  std::uint32_t refs = 0;       ///< handles + queue slots + scheduled events
  std::uint32_t gen = 0;        ///< bumped each time a pooled op is recycled
  int waiter_pid = -1;          ///< fiber to wake on completion
  sim::Callback on_complete;    ///< event-context continuation
  Status status{};              ///< filled in for receive-like ops
  OpPoolBase* pool = nullptr;   ///< home pool; null = heap-owned (delete)
  OpState* next_free = nullptr; ///< intrusive freelist link while recycled

  OpState() = default;
  explicit OpState(OpKind k) noexcept : kind(k) {}
  virtual ~OpState() = default;

  /// Recycle counter of the underlying slot: a live handle observes a
  /// stable generation for as long as it is held.
  [[nodiscard]] std::uint32_t generation() const noexcept { return gen; }

 protected:
  void reset_base() noexcept {
    complete = false;
    waiter_pid = -1;
    on_complete = nullptr;
    status = Status{};
  }
};

class OpPoolBase {
 public:
  virtual void release(OpState* op) noexcept = 0;

 protected:
  ~OpPoolBase() = default;
};

inline void unref_op(OpState* op) noexcept {
  if (op != nullptr && --op->refs == 0) {
    if (op->pool != nullptr)
      op->pool->release(op);
    else
      delete op;
  }
}

/// Intrusive reference to an op state. Copies pin the op (it cannot return
/// to its pool while any reference is live); the last release recycles
/// pooled ops and deletes heap-owned ones.
template <typename T>
class OpRef {
 public:
  OpRef() noexcept = default;
  OpRef(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)
  explicit OpRef(T* op) noexcept : op_(op) {
    if (op_ != nullptr) ++op_->refs;
  }
  OpRef(const OpRef& other) noexcept : op_(other.op_) {
    if (op_ != nullptr) ++op_->refs;
  }
  OpRef(OpRef&& other) noexcept : op_(other.op_) { other.op_ = nullptr; }
  template <typename U,
            std::enable_if_t<std::is_convertible_v<U*, T*>, int> = 0>
  OpRef(const OpRef<U>& other) noexcept  // NOLINT(google-explicit-constructor)
      : op_(other.get()) {
    if (op_ != nullptr) ++op_->refs;
  }
  template <typename U,
            std::enable_if_t<std::is_convertible_v<U*, T*>, int> = 0>
  OpRef(OpRef<U>&& other) noexcept  // NOLINT(google-explicit-constructor)
      : op_(other.detach()) {}

  OpRef& operator=(const OpRef& other) noexcept {
    OpRef(other).swap(*this);
    return *this;
  }
  OpRef& operator=(OpRef&& other) noexcept {
    OpRef(std::move(other)).swap(*this);
    return *this;
  }
  OpRef& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  ~OpRef() { unref_op(op_); }

  void reset() noexcept {
    unref_op(op_);
    op_ = nullptr;
  }
  void swap(OpRef& other) noexcept { std::swap(op_, other.op_); }

  [[nodiscard]] T* get() const noexcept { return op_; }
  [[nodiscard]] T* operator->() const noexcept { return op_; }
  [[nodiscard]] T& operator*() const noexcept { return *op_; }
  [[nodiscard]] explicit operator bool() const noexcept {
    return op_ != nullptr;
  }

  /// Hand the raw pointer (and its reference) to the caller.
  [[nodiscard]] T* detach() noexcept {
    T* op = op_;
    op_ = nullptr;
    return op;
  }

 private:
  template <typename U>
  friend class OpRef;

  T* op_ = nullptr;
};

/// Heap-owned op (collective state machines): reference-counted, deleted on
/// the last release.
template <typename T, typename... Args>
[[nodiscard]] OpRef<T> make_heap_op(Args&&... args) {
  return OpRef<T>(new T(std::forward<Args>(args)...));
}

enum class SendMode { Eager, Rendezvous };

struct SendOp final : OpState {
  /// Inline payload budget: eager-class elements (records, headers, small
  /// blocks) are copied into the pooled op itself; anything larger spills
  /// into `overflow_`, whose capacity survives recycling, so the heap is
  /// touched at most once per pool slot even for rendezvous-class payloads.
  static constexpr std::size_t kInlineBytes = 1024;

  SendOp() noexcept : OpState(OpKind::Send) {}

  std::uint64_t context = 0;
  int src_comm_rank = 0;  ///< sender's rank in the communicator
  int src_world = 0;
  int dst_world = 0;
  int tag = 0;
  std::size_t bytes = 0;  ///< wire size
  SendMode mode = SendMode::Eager;
  std::size_t payload_bytes = 0;  ///< 0 for synthetic messages

  void store_payload(const void* data, std::size_t n) {
    payload_bytes = n;
    if (n == 0) return;
    if (n <= kInlineBytes) {
      std::memcpy(inline_payload_.data(), data, n);
    } else {
      if (n > overflow_.capacity()) {
        // Round the reservation up to its power-of-two size class: recycled
        // slots then converge after one growth per class instead of creeping
        // as self-tuned frame budgets drift upward — late creep reads as a
        // steady-state allocation under the zero-alloc gate's delta method.
        std::size_t cap = 2 * kInlineBytes;
        while (cap < n) cap *= 2;
        overflow_.reserve(cap);
      }
      overflow_.resize(n);
      std::memcpy(overflow_.data(), data, n);
    }
  }

  [[nodiscard]] bool has_payload() const noexcept { return payload_bytes > 0; }
  [[nodiscard]] const std::byte* payload() const noexcept {
    if (payload_bytes == 0) return nullptr;
    return payload_bytes <= kInlineBytes ? inline_payload_.data()
                                         : overflow_.data();
  }

  void reset_for_reuse() noexcept {
    reset_base();
    payload_bytes = 0;
    overflow_.clear();  // keeps capacity
  }

 private:
  std::array<std::byte, kInlineBytes> inline_payload_;
  std::vector<std::byte> overflow_;
};

struct RecvOp final : OpState {
  RecvOp() noexcept : OpState(OpKind::Recv) {}

  std::uint64_t context = 0;
  int dst_world = 0;
  int src_filter = kAnySource;  ///< comm rank or kAnySource
  int tag_filter = kAnyTag;
  /// World rank of the one sender that can match this receive, or
  /// kAnySource when unknown. Failure-aware paths (collectives, p2p,
  /// aggregated IO) set it so a crash of that sender completes the receive
  /// with Status::failed (satisfied-by-failure) instead of leaving it
  /// posted forever; wildcard/stream receives leave it unset and keep the
  /// pre-existing semantics.
  int src_world = kAnySource;
  void* out = nullptr;
  std::size_t capacity = 0;
  bool overhead_charged = false;  ///< o_r charged at observation, once
  /// Fused wake/advance (streams): when completion finds a blocked waiter,
  /// wake it at completion + o_r with the overhead pre-charged — one
  /// scheduled resume instead of a wake plus a separate o_r advance (which
  /// costs its own event and context-switch pair per message).
  bool fused_wake = false;

  void reset_for_reuse() noexcept {
    reset_base();
    src_filter = kAnySource;
    tag_filter = kAnyTag;
    src_world = kAnySource;
    out = nullptr;
    capacity = 0;
    overhead_charged = false;
    fused_wake = false;
  }
};

struct OpPoolStats {
  std::uint64_t created = 0;   ///< op states ever allocated
  std::uint64_t acquired = 0;  ///< acquisitions (created + recycled)
  std::uint64_t released = 0;  ///< slots returned to the freelist
  [[nodiscard]] std::uint64_t reused() const noexcept {
    return acquired - created;
  }
  /// Slots currently held by live handles/queues/events. Fault-injection
  /// tests assert this returns to 0 after a crash-and-drain run: killing a
  /// rank must recycle every op it pinned, never leak pool slots.
  [[nodiscard]] std::uint64_t outstanding() const noexcept {
    return acquired - released;
  }
};

/// Freelist pool of op states. Slots are allocated once, handed out as
/// OpRefs, and return to the freelist (generation bumped) when the last
/// reference drops; steady-state traffic runs entirely on recycled slots.
template <typename T>
class OpPool final : public OpPoolBase {
 public:
  [[nodiscard]] OpRef<T> acquire() {
    ++stats_.acquired;
    if (free_head_ != nullptr) {
      T* op = static_cast<T*>(free_head_);
      free_head_ = op->next_free;
      op->next_free = nullptr;
      return OpRef<T>(op);
    }
    ++stats_.created;
    slots_.push_back(std::make_unique<T>());
    T* op = slots_.back().get();
    op->pool = this;
    return OpRef<T>(op);
  }

  void release(OpState* op) noexcept override {
    ++stats_.released;
    ++op->gen;
    // Resetting may drop continuations that hold references to other ops,
    // recursively releasing them; each inner release completes before the
    // outer freelist push, so the list stays consistent.
    static_cast<T*>(op)->reset_for_reuse();
    op->next_free = free_head_;
    free_head_ = op;
  }

  [[nodiscard]] const OpPoolStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return slots_.size();
  }

 private:
  std::vector<std::unique_ptr<T>> slots_;
  OpState* free_head_ = nullptr;
  OpPoolStats stats_;
};

/// FIFO over vector storage with a sliding head: push at the tail, match
/// scans and removals start at the oldest element. Preferred over
/// std::deque here because a deque recycles its block nodes as the queue
/// oscillates, which shows up as steady-state allocation churn in the
/// per-element hot path; vector capacity is retained across drain cycles.
template <typename T>
class FifoQueue {
 public:
  [[nodiscard]] bool empty() const noexcept { return head_ == items_.size(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return items_.size() - head_;
  }
  /// i-th live element, 0 = oldest.
  [[nodiscard]] T& operator[](std::size_t i) noexcept {
    return items_[head_ + i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return items_[head_ + i];
  }

  void push_back(T value) {
    // First touch reserves the whole steady-state regime: the sliding head
    // compacts at kCompactAt, so a queue that never fully drains needs up to
    // ~2*kCompactAt slots. Growing there lazily would land mid-run — a
    // bounded-but-late allocation the zero-alloc steady-state gate (and its
    // two-length delta method) would misread as a per-element cost.
    if (items_.capacity() == 0) items_.reserve(2 * kCompactAt);
    items_.push_back(std::move(value));
  }

  /// Remove and return the i-th live element. Head removal slides the
  /// window (amortized O(1)); interior removal shifts the tail (rare: a
  /// filtered match sitting behind older traffic of the same context).
  [[nodiscard]] T take(std::size_t i) {
    T out = std::move(items_[head_ + i]);
    if (i == 0) {
      ++head_;
      if (head_ == items_.size()) {
        items_.clear();  // keeps capacity
        head_ = 0;
      } else if (head_ >= kCompactAt && head_ * 2 >= items_.size()) {
        items_.erase(items_.begin(),
                     items_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
      }
    } else {
      items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(head_ + i));
    }
    return out;
  }

 private:
  static constexpr std::size_t kCompactAt = 64;
  std::vector<T> items_;
  std::size_t head_ = 0;
};

/// Matching filters against an arrived message (context equality is the
/// bucket key and is asserted by the full `matches` overload).
[[nodiscard]] inline bool matches_filters(int src_filter, int tag_filter,
                                          const SendOp& s) noexcept {
  return (src_filter == kAnySource || src_filter == s.src_comm_rank) &&
         (tag_filter == kAnyTag || tag_filter == s.tag);
}

[[nodiscard]] inline bool matches(const RecvOp& r, const SendOp& s) noexcept {
  return r.context == s.context && matches_filters(r.src_filter, r.tag_filter, s);
}

/// Unexpected arrivals and posted receives of one matching context, both in
/// arrival/post order, per MPI matching semantics. A single FIFO per context
/// preserves per-(context, source) arrival order, and wildcard receives see
/// the earliest arrival of the context first.
struct ContextQueues {
  FifoQueue<OpRef<SendOp>> unexpected;
  FifoQueue<OpRef<RecvOp>> posted;
  bool touched = true;  ///< traffic since the last sweep

  [[nodiscard]] bool drained() const noexcept {
    return unexpected.empty() && posted.empty();
  }
};

/// Per-world-rank matching state, bucketed by context id: many concurrent
/// streams (each with its own derived context) on one rank match in O(1)
/// amortized instead of scanning a shared flat queue.
///
/// Buckets are created on first use and reclaimed lazily: every
/// kSweepInterval accesses, buckets that sat drained AND untouched for the
/// whole interval are erased. Hot buckets (which pass through empty between
/// messages constantly) carry the touched mark and are never churned, so
/// the steady state stays allocation-free while dead contexts (short-lived
/// communicators/streams) cannot accumulate without bound.
struct Mailbox {
  static constexpr std::uint32_t kSweepInterval = 1024;

  std::unordered_map<std::uint64_t, ContextQueues> contexts;
  std::vector<int> probe_waiters;  ///< pids to wake on any new arrival
  std::uint32_t ops_since_sweep = 0;

  /// Bucket for `context`, marked live for this sweep interval.
  [[nodiscard]] ContextQueues& touch(std::uint64_t context) {
    ContextQueues& q = contexts[context];
    q.touched = true;
    if (++ops_since_sweep >= kSweepInterval) sweep();
    return q;  // erase() of other nodes never invalidates this reference
  }

  void sweep() {
    ops_since_sweep = 0;
    for (auto it = contexts.begin(); it != contexts.end();) {
      if (!it->second.touched && it->second.drained()) {
        it = contexts.erase(it);
      } else {
        it->second.touched = false;
        ++it;
      }
    }
  }
};

}  // namespace detail

/// Public handle to any asynchronous operation. Holding a Request pins the
/// op: pooled op states recycle only after every handle, queue slot, and
/// scheduled event has released its reference.
using Request = detail::OpRef<detail::OpState>;

}  // namespace ds::mpi
