#include "mpi/group.hpp"

#include <algorithm>
#include <stdexcept>

namespace ds::mpi {

Group::Group(std::vector<int> world_ranks) : members_(std::move(world_ranks)) {
  // Membership must be unique; duplicate world ranks would make rank_of
  // ambiguous and break point-to-point addressing.
  std::vector<int> sorted = members_;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
    throw std::invalid_argument("Group: duplicate world rank");
}

Group Group::world(int n) {
  std::vector<int> all(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
  return Group(std::move(all));
}

int Group::world_rank(int r) const {
  return members_.at(static_cast<std::size_t>(r));
}

int Group::rank_of(int world_rank) const noexcept {
  for (std::size_t i = 0; i < members_.size(); ++i)
    if (members_[i] == world_rank) return static_cast<int>(i);
  return -1;
}

Group Group::include(const std::vector<int>& ranks) const {
  std::vector<int> out;
  out.reserve(ranks.size());
  for (int r : ranks) out.push_back(world_rank(r));
  return Group(std::move(out));
}

Group Group::exclude(const std::vector<int>& ranks) const {
  std::vector<bool> drop(members_.size(), false);
  for (int r : ranks) {
    if (r < 0 || static_cast<std::size_t>(r) >= members_.size())
      throw std::out_of_range("Group::exclude: rank out of range");
    drop[static_cast<std::size_t>(r)] = true;
  }
  std::vector<int> out;
  for (std::size_t i = 0; i < members_.size(); ++i)
    if (!drop[i]) out.push_back(members_[i]);
  return Group(std::move(out));
}

}  // namespace ds::mpi
