// Shared value types of the message-passing runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace ds::mpi {

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Tags below this are reserved for the runtime (collectives, streams).
inline constexpr int kMinUserTag = 0;

/// Completion information for a receive.
struct Status {
  int source = kAnySource;  ///< sending rank, in the communicator's numbering
  int tag = kAnyTag;
  std::size_t bytes = 0;    ///< payload size on the wire
  bool synthetic = false;   ///< true when the sender attached no real payload
  /// The operation was aborted by fault injection (the receiving rank was
  /// crashed while the receive was posted); no data arrived.
  bool failed = false;
};

/// Thrown inside a simulated process when fault injection has crashed its
/// rank (fail-stop): the fiber observes the crash at its next runtime
/// interaction (compute, send/recv, wait, collective) and unwinds. Caught by
/// Machine::run's program wrapper, so the rest of the simulation continues;
/// RAII cleanup along the unwind path must not start new communication
/// (ScopedChannel/Channel::free and stream termination check
/// Machine::rank_failed and become no-ops on a crashed rank).
class RankFailure : public std::runtime_error {
 public:
  explicit RankFailure(int world_rank)
      : std::runtime_error("rank " + std::to_string(world_rank) +
                           " crashed (fault injection)"),
        world_rank_(world_rank) {}
  [[nodiscard]] int world_rank() const noexcept { return world_rank_; }

 private:
  int world_rank_;
};

/// Thrown out of Machine::run when MachineConfig::collective_timeout is set
/// and a collective instance is still incomplete after that much virtual
/// time. A watchdog for regressions: a collective that stops being
/// failure-aware fails the run in bounded virtual time instead of wedging
/// the event loop (and the surrounding ctest invocation).
class CollectiveTimeout : public std::runtime_error {
 public:
  CollectiveTimeout(int world_rank, int tag)
      : std::runtime_error("collective (tag " + std::to_string(tag) +
                           ") on rank " + std::to_string(world_rank) +
                           " exceeded MachineConfig::collective_timeout"),
        world_rank_(world_rank) {}
  [[nodiscard]] int world_rank() const noexcept { return world_rank_; }

 private:
  int world_rank_;
};

/// Outgoing payload. `ptr == nullptr` marks a *synthetic* payload: the
/// message occupies `bytes` on the simulated wire but carries no host memory.
/// Benches use synthetic payloads so that 8,192-rank runs do not allocate
/// terabytes; tests use real payloads and check content end to end.
///
/// `wire_bytes`, when nonzero, declares a wire size larger than the real
/// payload: the first `bytes` are carried (e.g. a routing header) while the
/// message still occupies `wire_bytes` on the simulated network. Used by the
/// modeled app modes to keep headers addressable without allocating bodies.
struct SendBuf {
  const void* ptr = nullptr;
  std::size_t bytes = 0;
  std::size_t wire_bytes = 0;  ///< 0 = same as `bytes`

  [[nodiscard]] std::size_t on_wire() const noexcept {
    return wire_bytes > bytes ? wire_bytes : bytes;
  }

  [[nodiscard]] static SendBuf synthetic(std::size_t bytes) noexcept {
    return SendBuf{nullptr, 0, bytes};
  }
  template <typename T>
  [[nodiscard]] static SendBuf of(const T* data, std::size_t count) noexcept {
    return SendBuf{data, count * sizeof(T), 0};
  }
  /// Real header of `header` with a modeled body totalling `wire` bytes.
  template <typename T>
  [[nodiscard]] static SendBuf header_only(const T& header,
                                           std::size_t wire) noexcept {
    return SendBuf{&header, sizeof(T), wire};
  }
};

/// Incoming buffer. `ptr == nullptr` discards payload content (synthetic
/// receive); `bytes` is the capacity.
struct RecvBuf {
  void* ptr = nullptr;
  std::size_t bytes = 0;

  [[nodiscard]] static RecvBuf discard(std::size_t capacity) noexcept {
    return RecvBuf{nullptr, capacity};
  }
  template <typename T>
  [[nodiscard]] static RecvBuf of(T* data, std::size_t count) noexcept {
    return RecvBuf{data, count * sizeof(T)};
  }
};

/// Reduction combiner: fold `bytes` of `in` into `accum`. Called only when
/// both operands carry real data.
using ReduceFn = std::function<void(const std::byte* in, std::byte* accum,
                                    std::size_t bytes)>;

/// Elementwise sum combiner for arithmetic element type T.
template <typename T>
[[nodiscard]] ReduceFn reduce_sum() {
  return [](const std::byte* in, std::byte* accum, std::size_t bytes) {
    const auto* a = reinterpret_cast<const T*>(in);
    auto* b = reinterpret_cast<T*>(accum);
    for (std::size_t i = 0; i < bytes / sizeof(T); ++i) b[i] += a[i];
  };
}

template <typename T>
[[nodiscard]] ReduceFn reduce_min() {
  return [](const std::byte* in, std::byte* accum, std::size_t bytes) {
    const auto* a = reinterpret_cast<const T*>(in);
    auto* b = reinterpret_cast<T*>(accum);
    for (std::size_t i = 0; i < bytes / sizeof(T); ++i)
      if (a[i] < b[i]) b[i] = a[i];
  };
}

template <typename T>
[[nodiscard]] ReduceFn reduce_max() {
  return [](const std::byte* in, std::byte* accum, std::size_t bytes) {
    const auto* a = reinterpret_cast<const T*>(in);
    auto* b = reinterpret_cast<T*>(accum);
    for (std::size_t i = 0; i < bytes / sizeof(T); ++i)
      if (a[i] > b[i]) b[i] = a[i];
  };
}

}  // namespace ds::mpi
