// The simulated parallel machine: engine + fabric + file system + the
// message matching/transport core that the Rank facade and the collective
// state machines sit on.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fs/filesystem.hpp"
#include "mpi/comm.hpp"
#include "mpi/ops.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace ds::mpi {

class Rank;

struct MachineConfig {
  int world_size = 1;
  net::NetworkConfig network = net::NetworkConfig::aries_like();
  fs::FsConfig filesystem = fs::FsConfig::lustre_like();
  sim::EngineConfig engine{};

  [[nodiscard]] static MachineConfig testbed(int world_size) {
    MachineConfig c;
    c.world_size = world_size;
    return c;
  }
};

class Machine {
 public:
  explicit Machine(MachineConfig config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Spawn one fiber per world rank running `program`, then run the engine
  /// to completion. Returns the virtual makespan (latest event time).
  util::SimTime run(std::function<void(Rank&)> program);

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] net::Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] fs::FileSystem& filesystem() noexcept { return filesystem_; }
  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] int world_size() const noexcept { return config_.world_size; }
  [[nodiscard]] const Comm& world() const noexcept { return world_; }

  // ---- runtime services (used by Rank, collectives, streams) ----

  /// Transport a message. Charges no CPU time (callers charge o_s/o_r);
  /// reserves fabric ports, schedules arrival and sender-completion events.
  /// Callable from fiber or event context.
  std::shared_ptr<detail::SendOp> post_send(std::uint64_t context, int src_comm_rank,
                                            int src_world, int dst_world, int tag,
                                            SendBuf data,
                                            std::function<void()> on_complete = {});

  /// Post a receive; matches immediately against unexpected arrivals.
  std::shared_ptr<detail::RecvOp> post_recv(std::uint64_t context, int dst_world,
                                            int src_filter, int tag_filter,
                                            RecvBuf out,
                                            std::function<void()> on_complete = {});

  /// Non-consuming look into dst's unexpected queue. Returns true and fills
  /// `out` when a matching message has arrived.
  bool match_probe(std::uint64_t context, int dst_world, int src_filter,
                   int tag_filter, Status* out);

  /// Register a fiber to be woken at the next arrival for dst_world.
  void add_probe_waiter(int dst_world, int pid);

  /// Deterministic derived context id (same inputs -> same id on all ranks,
  /// no coordination needed).
  [[nodiscard]] static std::uint64_t derive_context(std::uint64_t parent,
                                                    std::uint64_t salt,
                                                    std::uint64_t color) noexcept;

  /// Mark an op complete: fire continuation, wake waiter.
  void complete_op(detail::OpState& op);

  /// Control-message wire size used by rendezvous handshakes.
  static constexpr std::size_t kControlBytes = 64;

 private:
  void deposit(const std::shared_ptr<detail::SendOp>& msg);
  void start_transfer(const std::shared_ptr<detail::RecvOp>& recv,
                      const std::shared_ptr<detail::SendOp>& send);
  void finish_delivery(const std::shared_ptr<detail::RecvOp>& recv,
                       const std::shared_ptr<detail::SendOp>& send);

  MachineConfig config_;
  sim::Engine engine_;
  net::Fabric fabric_;
  fs::FileSystem filesystem_;
  Comm world_;
  std::vector<detail::Mailbox> mailboxes_;  // by world rank
};

}  // namespace ds::mpi
