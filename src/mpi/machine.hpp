// The simulated parallel machine: engine + fabric + file system + the
// message matching/transport core that the Rank facade and the collective
// state machines sit on.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fs/filesystem.hpp"
#include "mpi/comm.hpp"
#include "mpi/ops.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "resilience/agreement.hpp"
#include "resilience/fault.hpp"
#include "resilience/membership.hpp"
#include "sim/engine.hpp"

namespace ds::mpi {

class Rank;

struct MachineConfig {
  int world_size = 1;
  net::NetworkConfig network = net::NetworkConfig::aries_like();
  fs::FsConfig filesystem = fs::FsConfig::lustre_like();
  sim::EngineConfig engine{};
  /// Fault-injection schedule executed during run() (see resilience/fault.hpp).
  sim::FaultPlan faults{};
  /// Observability switches (ds::obs): span tracing and the metrics
  /// registry. Off by default — the hot path pays one null check per hook
  /// when disabled. `engine.record_trace` implies `observability.trace`
  /// (and vice versa), so legacy trace users keep working.
  obs::ObsConfig observability{};
  /// When nonzero, every collective arms a watchdog: an instance still
  /// incomplete after this much virtual time throws CollectiveTimeout out of
  /// run() instead of wedging the event loop. Off by default; tests enable
  /// it so a future non-failure-aware hang fails in bounded virtual time
  /// rather than hanging ctest.
  util::SimTime collective_timeout = 0;

  [[nodiscard]] static MachineConfig testbed(int world_size) {
    MachineConfig c;
    c.world_size = world_size;
    return c;
  }
};

class Machine {
 public:
  explicit Machine(MachineConfig config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Spawn one fiber per world rank running `program`, then run the engine
  /// to completion. Returns the virtual makespan (latest event time).
  util::SimTime run(std::function<void(Rank&)> program);

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] net::Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] fs::FileSystem& filesystem() noexcept { return filesystem_; }

  /// Metrics registry (ds::obs), or nullptr when
  /// MachineConfig::observability.metrics is off. Runtime layers feed it at
  /// lifecycle points; machine collectors (fabric link bytes/occupancy,
  /// op-pool stats, engine event count) snapshot on collect()/to_json().
  [[nodiscard]] obs::Metrics* metrics() noexcept { return metrics_.get(); }
  [[nodiscard]] bool metrics_enabled() const noexcept {
    return metrics_ != nullptr;
  }
  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] int world_size() const noexcept { return config_.world_size; }
  [[nodiscard]] const Comm& world() const noexcept { return world_; }

  // ---- runtime services (used by Rank, collectives, streams) ----

  /// Transport a message. Charges no CPU time (callers charge o_s/o_r);
  /// reserves fabric ports, schedules arrival and sender-completion events.
  /// Callable from fiber or event context. The returned op comes from the
  /// machine's freelist pool and recycles when the last reference drops.
  detail::OpRef<detail::SendOp> post_send(std::uint64_t context,
                                          int src_comm_rank, int src_world,
                                          int dst_world, int tag, SendBuf data,
                                          sim::Callback on_complete = {});

  /// Post a receive; matches immediately against unexpected arrivals.
  /// `fused_wake` fuses the waiter's wake with the o_r charge: completion
  /// resumes a blocked waiter at completion-time + o_r with the overhead
  /// pre-charged, replacing the wake + separate-advance pair (streams'
  /// per-message context-switch floor). No effect on receives that complete
  /// synchronously or are tested/continued instead of waited on.
  ///
  /// `src_world`, when >= 0, names the world rank of the only sender that
  /// can match: if that rank is already dead (and no message of its outran
  /// the crash into the unexpected queue), the receive completes immediately
  /// with Status::failed, and if it dies while the receive is posted,
  /// kill_rank completes it the same way (satisfied-by-failure). Receives
  /// with kAnySource keep the pre-existing semantics.
  detail::OpRef<detail::RecvOp> post_recv(std::uint64_t context, int dst_world,
                                          int src_filter, int tag_filter,
                                          RecvBuf out,
                                          sim::Callback on_complete = {},
                                          bool fused_wake = false,
                                          int src_world = kAnySource);

  /// Non-consuming look into dst's unexpected queue. Returns true and fills
  /// `out` when a matching message has arrived.
  bool match_probe(std::uint64_t context, int dst_world, int src_filter,
                   int tag_filter, Status* out);

  /// Register a fiber to be woken at the next arrival for dst_world.
  void add_probe_waiter(int dst_world, int pid);

  /// Deterministic derived context id (same inputs -> same id on all ranks,
  /// no coordination needed).
  [[nodiscard]] static std::uint64_t derive_context(std::uint64_t parent,
                                                    std::uint64_t salt,
                                                    std::uint64_t color) noexcept;

  /// Mark an op complete: fire continuation, wake waiter.
  void complete_op(detail::OpState& op);

  /// Freelist pool statistics (slots created vs. acquisitions served from
  /// the freelist) for benches and the pooled-reuse tests.
  struct PoolStats {
    detail::OpPoolStats send;
    detail::OpPoolStats recv;
  };
  [[nodiscard]] PoolStats pool_stats() const noexcept {
    return PoolStats{send_pool_.stats(), recv_pool_.stats()};
  }

  /// Live matching-context buckets in `world_rank`'s mailbox (introspection
  /// for the lazy bucket sweep: dead contexts must not accumulate).
  [[nodiscard]] std::size_t mailbox_context_count(int world_rank) const {
    return mailboxes_.at(static_cast<std::size_t>(world_rank)).contexts.size();
  }

  // ---- fault injection / failure record (resilience subsystem) ----

  /// True once `world_rank` has been crashed (and not restarted).
  [[nodiscard]] bool rank_failed(int world_rank) const noexcept {
    return dead_[static_cast<std::size_t>(world_rank)] != 0;
  }
  /// Monotone counter bumped on every crash: layers that must react to
  /// failures (stream failover) compare it against a cached value instead of
  /// scanning the dead set on every operation.
  [[nodiscard]] std::uint64_t failure_epoch() const noexcept {
    return failure_epoch_;
  }
  /// Monotone counter bumped on every rank restart (the rejoin side of the
  /// membership signal). Streams compare it against a cached value to notice
  /// that a previously dead rank is live again and rebalance flows back.
  [[nodiscard]] std::uint64_t rejoin_epoch() const noexcept {
    return rejoin_epoch_;
  }
  /// How many times `world_rank`'s program fiber has been (re)started; 0 for
  /// the original incarnation. Restart-aware programs branch on this.
  [[nodiscard]] int incarnation(int world_rank) const noexcept {
    return incarnation_[static_cast<std::size_t>(world_rank)];
  }

  /// Fail-stop `world_rank` now (fiber or event context): marks it dead,
  /// drops its unexpected messages (releasing their pool slots), completes
  /// its posted receives with Status::failed (waking the fiber so it can
  /// unwind via RankFailure), and wakes registered failure waiters. Messages
  /// already in flight toward the rank are dropped on arrival; rendezvous
  /// senders targeting it complete without transferring.
  void kill_rank(int world_rank);

  /// Respawn the program fiber of a previously crashed rank (incarnation
  /// bumped). The new fiber starts at the current virtual time with a fresh
  /// stack; reintegration into application protocols is the program's job.
  void restart_rank(int world_rank);

  /// Throw RankFailure if `world_rank` has been crashed. Called by the Rank
  /// facade at every runtime interaction — the fail-stop observation point.
  void ensure_alive(int world_rank) const {
    if (rank_failed(world_rank)) throw RankFailure(world_rank);
  }

  /// Register the calling fiber to be woken at the next crash or rejoin
  /// (one-shot, like add_probe_waiter): used by blocking protocol loops
  /// (credit/term waits) that must re-evaluate routing when membership moves.
  void add_failure_waiter(int pid);

  /// Fetch-or-create the shared membership ledger for a channel context —
  /// the elastic-membership counterpart of the failure record. Every rank
  /// that creates or attaches to the same channel receives the same ledger,
  /// so a runtime retire/admit of a consumer slot is observed consistently
  /// (at each rank's next poll) without extra coordination messages.
  [[nodiscard]] std::shared_ptr<resilience::MembershipLedger>
  membership_ledger(std::uint64_t context, int consumer_slots);

  /// Fetch-or-create the shared agreement ledger for one Rank::agree
  /// instance (`key` = context derived from the communicator and the
  /// per-context agreement sequence number, so every participant of the
  /// same call lands on the same ledger). `release_agreement` drops the
  /// entry once the last live participant has read the frozen result.
  [[nodiscard]] std::shared_ptr<resilience::Agreement> agreement(
      std::uint64_t key, int size);
  void release_agreement(std::uint64_t key);

  /// Control-message wire size used by rendezvous handshakes.
  static constexpr std::size_t kControlBytes = 64;

 private:
  void spawn_rank(int r);
  void install_faults();
  void apply_fault(const sim::FaultEvent& event);
  void deposit(const detail::OpRef<detail::SendOp>& msg);
  void start_transfer(const detail::OpRef<detail::RecvOp>& recv,
                      const detail::OpRef<detail::SendOp>& send);
  void finish_delivery(const detail::OpRef<detail::RecvOp>& recv,
                       const detail::OpRef<detail::SendOp>& send);

  MachineConfig config_;
  // The pools are declared first: engine events and mailbox queues hold
  // references into them, so the pools must be destroyed last.
  detail::OpPool<detail::SendOp> send_pool_;
  detail::OpPool<detail::RecvOp> recv_pool_;
  sim::Engine engine_;
  net::Fabric fabric_;
  fs::FileSystem filesystem_;
  std::unique_ptr<obs::Metrics> metrics_;  ///< null = metrics disabled
  Comm world_;
  std::vector<detail::Mailbox> mailboxes_;  // by world rank

  // fault-injection state
  std::function<void(Rank&)> program_;     ///< for restart_rank respawns
  std::vector<int> pids_;                  ///< engine pid per world rank
  std::vector<std::uint8_t> dead_;         ///< fail-stopped ranks
  std::vector<int> incarnation_;           ///< fiber (re)starts per rank
  std::uint64_t failure_epoch_ = 0;
  std::uint64_t rejoin_epoch_ = 0;
  std::vector<int> failure_waiters_;  ///< pids to wake on the next crash/rejoin
  /// Per-channel-context membership ledgers (see membership_ledger).
  std::unordered_map<std::uint64_t, std::shared_ptr<resilience::MembershipLedger>>
      ledgers_;
  /// Live agreement ledgers (see agreement()); erased when read out.
  std::unordered_map<std::uint64_t, std::shared_ptr<resilience::Agreement>>
      agreements_;
};

}  // namespace ds::mpi
