// Event-driven collective algorithms.
//
// Each nonblocking collective is a per-rank state machine advanced by message
// completion continuations, never by the owning fiber. That models offloaded
// / asynchronous progress: communication proceeds while the fiber computes,
// which the paper's nonblocking baselines (MPI_Iallgatherv, MPI_Ireduce,
// nonblocking halo exchange) depend on for overlap.
//
// Algorithms (matching mainstream MPI implementations, so cost scales with P
// the way the paper's testbed did):
//   barrier    — dissemination, ceil(log2 P) rounds
//   bcast      — binomial tree
//   reduce     — binomial tree (children combined in order)
//   allreduce  — reduce to 0 + bcast (2 log P rounds)
//   allgatherv — ring, P-1 rounds
//   alltoallv  — pairwise exchange, P-1 rounds
//   gatherv    — flat tree into root (root's drain port is the bottleneck,
//                deliberately: that is the paper's master-congestion effect)
#include <cassert>
#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "mpi/machine.hpp"
#include "mpi/rank.hpp"

namespace ds::mpi {

namespace {

[[nodiscard]] int ceil_log2(int n) noexcept {
  int rounds = 0;
  int reach = 1;
  while (reach < n) {
    reach <<= 1;
    ++rounds;
  }
  return rounds;
}

/// Common plumbing for collective state machines.
///
/// Failure-awareness: every expected message names its sender's world rank,
/// so a crashed peer's message is *satisfied by failure* (the receive
/// completes with Status::failed — immediately if the peer is already dead,
/// or from kill_rank's sweep if it dies while posted) and sends toward dead
/// peers complete inert. The round schedule therefore runs to structural
/// completion under any crash pattern — no re-posting, no hang — and the
/// op's outcome reports the failure: Status::failed is set when any of my
/// own exchanges was satisfied by failure, or when any member of the
/// communicator is dead by the time I finish (the scan is gated on
/// failure_epoch(), so the fault-free path stays O(1) and bit-identical in
/// timing to the non-failure-aware code).
struct CollBase : detail::OpState {
  Machine* m = nullptr;
  Comm comm;
  int me = -1;  // my rank in comm
  int size = 0;
  int tag = 0;
  bool peer_failed = false;       ///< some exchange was satisfied by failure
  bool last_recv_failed = false;  ///< outcome of the latest crecv, for data steps

  void init(Machine& machine, const Comm& c, int my_rank, int coll_tag) {
    m = &machine;
    comm = c;
    me = my_rank;
    size = c.size();
    tag = coll_tag;
    const util::SimTime budget = machine.config().collective_timeout;
    if (budget > 0) {
      // Watchdog (off by default): a collective instance that is neither
      // complete nor excused (its own rank crashed mid-run and the op was
      // parked) after `budget` virtual time aborts the run. The event holds
      // a reference, so the op outlives the check.
      detail::OpRef<detail::OpState> self(this);
      Machine* mach = m;
      const int world = c.world_rank(my_rank);
      const int t = coll_tag;
      machine.engine().schedule_after(budget, [self, mach, world, t] {
        if (!self->complete && !mach->rank_failed(world))
          throw CollectiveTimeout(world, t);
      });
    }
  }

  void csend(int dst, SendBuf data, sim::Callback k) {
    m->post_send(comm.context(), me, comm.world_rank(me), comm.world_rank(dst),
                 tag, data, std::move(k));
  }
  void crecv(int src, RecvBuf out, sim::Callback k) {
    auto r = m->post_recv(comm.context(), comm.world_rank(me), src, tag, out,
                          /*on_complete=*/{}, /*fused_wake=*/false,
                          /*src_world=*/comm.world_rank(src));
    // The wrapper observes the receive's outcome before advancing the state
    // machine. A raw pointer is safe: when it runs as on_complete the op is
    // pinned by complete_op's caller, and the synchronous branch runs under
    // the local reference.
    detail::RecvOp* raw = r.get();
    auto fire = [this, raw, k = std::move(k)]() mutable {
      last_recv_failed = raw->status.failed;
      if (last_recv_failed) peer_failed = true;
      k();
    };
    if (r->complete) {
      fire();
    } else {
      r->on_complete = std::move(fire);
    }
  }
  [[nodiscard]] bool observed_failure() const {
    if (peer_failed) return true;
    if (m->failure_epoch() == 0) return false;
    for (int r = 0; r < size; ++r)
      if (m->rank_failed(comm.world_rank(r))) return true;
    return false;
  }
  void finish() {
    if (observed_failure()) status.failed = true;
    m->complete_op(*this);
  }
};

// ---------------------------------------------------------------- barrier --
struct IbarrierOp final : CollBase {
  int round = 0;
  int rounds = 0;
  int pending = 0;

  static Request launch(Machine& m, const Comm& c, int me, int tag) {
    auto op = detail::make_heap_op<IbarrierOp>();
    op->init(m, c, me, tag);
    op->rounds = ceil_log2(c.size());
    op->step(op);
    return op;
  }

  void step(const detail::OpRef<IbarrierOp>& self) {
    if (round >= rounds) {
      finish();
      return;
    }
    const int dist = 1 << round;
    ++round;
    const int to = (me + dist) % size;
    const int from = (me - dist % size + size) % size;
    pending = 2;
    auto k = [this, self] {
      if (--pending == 0) step(self);
    };
    csend(to, SendBuf::synthetic(1), k);
    crecv(from, RecvBuf::discard(1), k);
  }
};

// ------------------------------------------------------------------ bcast --
struct IbcastOp final : CollBase {
  int root = 0;
  void* data = nullptr;
  std::size_t bytes = 0;
  int pending = 0;

  [[nodiscard]] int rel(int r) const noexcept { return (r - root + size) % size; }
  [[nodiscard]] int abs(int r) const noexcept { return (r + root) % size; }

  static Request launch(Machine& m, const Comm& c, int me, int root,
                        RecvBuf buf, int tag) {
    auto op = detail::make_heap_op<IbcastOp>();
    op->init(m, c, me, tag);
    op->root = root;
    op->data = buf.ptr;
    op->bytes = buf.bytes;
    const int relrank = op->rel(me);
    if (relrank == 0) {
      op->send_to_children(op);
    } else {
      // Find my parent: clear my lowest set bit.
      int mask = 1;
      while (!(relrank & mask)) mask <<= 1;
      const int parent = op->abs(relrank ^ mask);
      op->crecv(parent, RecvBuf{op->data, op->bytes},
                [op] { op->send_to_children(op); });
    }
    return op;
  }

  void send_to_children(const detail::OpRef<IbcastOp>& self) {
    const int relrank = rel(me);
    // Children: relrank | mask for masks strictly below my lowest set bit
    // (every mask up to the tree reach for the root).
    int lowest = 1;
    while (relrank != 0 && !(relrank & lowest)) lowest <<= 1;
    std::vector<int> children;
    const int limit = (relrank == 0) ? (1 << ceil_log2(size)) : lowest;
    for (int mask = limit >> 1; mask >= 1; mask >>= 1) {
      const int child = relrank | mask;
      if (child != relrank && child < size) children.push_back(child);
    }
    if (children.empty()) {
      finish();
      return;
    }
    pending = static_cast<int>(children.size());
    for (const int child : children) {
      csend(abs(child), SendBuf{data, bytes}, [this, self] {
        if (--pending == 0) finish();
      });
    }
  }
};

// ----------------------------------------------------------------- reduce --
struct IreduceOp final : CollBase {
  int root = 0;
  const void* in = nullptr;
  void* out = nullptr;
  std::size_t bytes = 0;
  ReduceFn fn;
  bool synthetic = true;
  std::vector<std::byte> accum;
  std::vector<std::byte> incoming;
  int mask = 1;

  [[nodiscard]] int rel(int r) const noexcept { return (r - root + size) % size; }
  [[nodiscard]] int abs(int r) const noexcept { return (r + root) % size; }

  static Request launch(Machine& m, const Comm& c, int me, int root, SendBuf in,
                        void* out, ReduceFn fn, int tag) {
    auto op = detail::make_heap_op<IreduceOp>();
    op->init(m, c, me, tag);
    op->root = root;
    op->in = in.ptr;
    op->out = out;
    op->bytes = in.on_wire();
    op->fn = std::move(fn);
    op->synthetic = (in.ptr == nullptr);
    if (!op->synthetic) {
      op->accum.resize(op->bytes);
      std::memcpy(op->accum.data(), in.ptr, op->bytes);
      op->incoming.resize(op->bytes);
    }
    op->step(op);
    return op;
  }

  void step(const detail::OpRef<IreduceOp>& self) {
    const int relrank = rel(me);
    while (mask < size) {
      if (relrank & mask) {
        // My turn to fold upward: single send to parent, then done.
        const int parent = abs(relrank ^ mask);
        csend(parent,
              synthetic ? SendBuf::synthetic(bytes)
                        : SendBuf{accum.data(), bytes},
              [this, self] { finish(); });
        return;
      }
      const int child = relrank | mask;
      mask <<= 1;
      if (child < size) {
        crecv(abs(child),
              synthetic ? RecvBuf::discard(bytes)
                        : RecvBuf{incoming.data(), bytes},
              [this, self] {
                // A child satisfied by failure contributed no data; fold
                // nothing and let the outcome report the failure.
                if (!synthetic && fn && !last_recv_failed)
                  fn(incoming.data(), accum.data(), bytes);
                step(self);
              });
        return;  // resume from the continuation
      }
    }
    // Only the root exits the loop without sending.
    if (!synthetic && out) std::memcpy(out, accum.data(), bytes);
    finish();
  }
};

// ------------------------------------------------------------- allgatherv --
// Recursive doubling (log2 P rounds) when P is a power of two — essential at
// scale, where a ring's P-1 rounds per rank would mean O(P^2) messages — and
// a ring otherwise.
struct IallgathervOp final : CollBase {
  std::byte* out = nullptr;
  std::vector<std::size_t> counts;
  std::vector<std::size_t> displs;
  int round = 0;
  int pending = 0;
  bool power_of_two = false;

  [[nodiscard]] std::size_t segment_bytes(int from, int to) const {
    return displs[static_cast<std::size_t>(to)] -
           displs[static_cast<std::size_t>(from)];
  }

  static Request launch(Machine& m, const Comm& c, int me, SendBuf mine,
                        void* out, const std::vector<std::size_t>& counts,
                        int tag) {
    if (static_cast<int>(counts.size()) != c.size())
      throw std::invalid_argument("iallgatherv: counts.size() != comm size");
    if (mine.ptr && mine.bytes != counts[static_cast<std::size_t>(me)])
      throw std::invalid_argument("iallgatherv: my block size != counts[me]");
    auto op = detail::make_heap_op<IallgathervOp>();
    op->init(m, c, me, tag);
    op->out = static_cast<std::byte*>(out);
    op->counts = counts;
    op->power_of_two = (c.size() & (c.size() - 1)) == 0;
    op->displs.resize(counts.size() + 1, 0);
    std::partial_sum(counts.begin(), counts.end(), op->displs.begin() + 1);
    if (op->out && mine.ptr) {
      std::memcpy(op->out + op->displs[static_cast<std::size_t>(me)], mine.ptr,
                  mine.bytes);
    }
    op->step(op);
    return op;
  }

  void step(const detail::OpRef<IallgathervOp>& self) {
    if (power_of_two ? (1 << round) >= size : round >= size - 1) {
      finish();
      return;
    }
    pending = 2;
    auto k_done = [this, self] {
      if (--pending == 0) step(self);
    };
    if (power_of_two) {
      // Round k: swap my accumulated 2^k-rank block with partner me^2^k.
      const int k = round++;
      const int half = 1 << k;
      const int partner = me ^ half;
      const int mine_lo = me & ~(half - 1);      // start of my held block
      const int theirs_lo = partner & ~(half - 1);
      csend(partner,
            out ? SendBuf{out + displs[static_cast<std::size_t>(mine_lo)],
                          segment_bytes(mine_lo, mine_lo + half)}
                : SendBuf::synthetic(segment_bytes(mine_lo, mine_lo + half)),
            k_done);
      crecv(partner,
            out ? RecvBuf{out + displs[static_cast<std::size_t>(theirs_lo)],
                          segment_bytes(theirs_lo, theirs_lo + half)}
                : RecvBuf::discard(segment_bytes(theirs_lo, theirs_lo + half)),
            k_done);
      return;
    }
    // Ring: in round k, pass along the block received in round k-1.
    const int k = round++;
    const auto send_idx = static_cast<std::size_t>((me - k + size) % size);
    const auto recv_idx = static_cast<std::size_t>((me - k - 1 + size) % size);
    const int right = (me + 1) % size;
    const int left = (me - 1 + size) % size;
    csend(right,
          out ? SendBuf{out + displs[send_idx], counts[send_idx]}
              : SendBuf::synthetic(counts[send_idx]),
          k_done);
    crecv(left,
          out ? RecvBuf{out + displs[recv_idx], counts[recv_idx]}
              : RecvBuf::discard(counts[recv_idx]),
          k_done);
  }
};

// -------------------------------------------------------------- alltoallv --
struct IalltoallvOp final : CollBase {
  const std::byte* send_buf = nullptr;
  std::byte* recv_buf = nullptr;
  std::vector<std::size_t> send_counts, recv_counts;
  std::vector<std::size_t> send_displs, recv_displs;
  int round = 1;
  int pending = 0;

  static Request launch(Machine& m, const Comm& c, int me, const void* send_buf,
                        const std::vector<std::size_t>& send_counts,
                        void* recv_buf,
                        const std::vector<std::size_t>& recv_counts, int tag) {
    if (static_cast<int>(send_counts.size()) != c.size() ||
        static_cast<int>(recv_counts.size()) != c.size())
      throw std::invalid_argument("ialltoallv: counts size != comm size");
    auto op = detail::make_heap_op<IalltoallvOp>();
    op->init(m, c, me, tag);
    op->send_buf = static_cast<const std::byte*>(send_buf);
    op->recv_buf = static_cast<std::byte*>(recv_buf);
    op->send_counts = send_counts;
    op->recv_counts = recv_counts;
    op->send_displs.resize(send_counts.size() + 1, 0);
    op->recv_displs.resize(recv_counts.size() + 1, 0);
    std::partial_sum(send_counts.begin(), send_counts.end(),
                     op->send_displs.begin() + 1);
    std::partial_sum(recv_counts.begin(), recv_counts.end(),
                     op->recv_displs.begin() + 1);
    const auto self_idx = static_cast<std::size_t>(me);
    if (op->send_buf && op->recv_buf) {
      std::memcpy(op->recv_buf + op->recv_displs[self_idx],
                  op->send_buf + op->send_displs[self_idx],
                  std::min(send_counts[self_idx], recv_counts[self_idx]));
    }
    op->step(op);
    return op;
  }

  void step(const detail::OpRef<IalltoallvOp>& self) {
    int skipped = 0;
    while (round < size) {
      const int k = round++;
      const auto dst = static_cast<std::size_t>((me + k) % size);
      const auto src = static_cast<std::size_t>((me - k + size) % size);
      // Empty rounds are priced, not exchanged: a dense pairwise alltoall
      // still walks every peer (one zero-byte message each way), but
      // simulating O(P^2) empty messages would sink the event engine. We
      // charge the per-round wire time in bulk and move on.
      if (send_counts[dst] == 0 && recv_counts[src] == 0) {
        ++skipped;
        continue;
      }
      auto launch = [this, self, dst, src] {
        pending = 2;
        auto k_done = [this, self] {
          if (--pending == 0) step(self);
        };
        csend(static_cast<int>(dst),
              send_buf ? SendBuf{send_buf + send_displs[dst], send_counts[dst]}
                       : SendBuf::synthetic(send_counts[dst]),
              k_done);
        crecv(static_cast<int>(src),
              recv_buf ? RecvBuf{recv_buf + recv_displs[src], recv_counts[src]}
                       : RecvBuf::discard(recv_counts[src]),
              k_done);
      };
      if (skipped > 0) {
        m->engine().schedule_after(skipped * empty_round_cost(), launch);
      } else {
        launch();
      }
      return;
    }
    if (skipped > 0) {
      m->engine().schedule_after(skipped * empty_round_cost(),
                                 [this, self] { finish(); });
    } else {
      finish();
    }
  }

  [[nodiscard]] util::SimTime empty_round_cost() const {
    // One zero-byte message each way: wire latency, injection, and the
    // per-message software overheads on both ends.
    const auto& net = m->fabric().config();
    return net.latency + net.injection_gap + net.send_overhead +
           net.recv_overhead;
  }
};

// ---------------------------------------------------------------- gatherv --
struct IgathervOp final : CollBase {
  int pending = 0;

  static Request launch(Machine& m, const Comm& c, int me, int root,
                        SendBuf mine, void* out,
                        const std::vector<std::size_t>& counts, int tag) {
    auto op = detail::make_heap_op<IgathervOp>();
    op->init(m, c, me, tag);
    if (me != root) {
      op->csend(root, mine, [op] { op->finish(); });
      return op;
    }
    std::vector<std::size_t> displs(counts.size() + 1, 0);
    std::partial_sum(counts.begin(), counts.end(), displs.begin() + 1);
    auto* base = static_cast<std::byte*>(out);
    if (base && mine.ptr)
      std::memcpy(base + displs[static_cast<std::size_t>(root)], mine.ptr,
                  mine.bytes);
    op->pending = op->size - 1;
    if (op->pending == 0) {
      op->finish();
      return op;
    }
    for (int r = 0; r < op->size; ++r) {
      if (r == root) continue;
      const auto idx = static_cast<std::size_t>(r);
      op->crecv(r,
                base ? RecvBuf{base + displs[idx], counts[idx]}
                     : RecvBuf::discard(counts[idx]),
                [op] {
                  if (--op->pending == 0) op->finish();
                });
    }
    return op;
  }
};

// -------------------------------------------------------------- composite --
struct CompositeOp final : detail::OpState {
  /// Chains two already-launched stages? No — the second stage must only
  /// start after the first completes, so we hold launch thunks.
  static Request launch(Machine& m, std::function<Request()> first,
                        std::function<Request()> second) {
    auto op = detail::make_heap_op<CompositeOp>();
    // Stages are stored before their continuations are attached so the
    // finish path can read both outcomes (a stage may complete
    // synchronously, e.g. under satisfied-by-failure fast paths).
    op->stage1 = first();
    auto chain = [&m, op, second] {
      op->stage2 = second();
      auto finish = [&m, op] {
        if (op->stage1->status.failed || op->stage2->status.failed)
          op->status.failed = true;
        m.complete_op(*op);
      };
      if (op->stage2->complete) {
        finish();
      } else {
        op->stage2->on_complete = finish;
      }
    };
    if (op->stage1->complete) {
      chain();
    } else {
      op->stage1->on_complete = chain;
    }
    return op;
  }

  Request stage1, stage2;
};

}  // namespace

// ---- Rank entry points -----------------------------------------------

Request Rank::ibarrier(const Comm& comm) {
  const int me = rank_in(comm);
  if (me < 0) throw std::logic_error("ibarrier: not a member");
  return IbarrierOp::launch(*machine_, comm, me, next_coll_tag(comm));
}

namespace {
/// Blocking wrappers surface the collective's outcome (Status::failed on a
/// crash observed mid-collective) instead of hanging or swallowing it.
[[nodiscard]] Status wait_outcome(Rank& self, const Request& req) {
  self.wait(req);
  return req->status;
}
}  // namespace

Status Rank::barrier(const Comm& comm) {
  const sim::SpanScope span(*process_, obs::SpanKind::Collective, "barrier");
  return wait_outcome(*this, ibarrier(comm));
}

Request Rank::ibcast(const Comm& comm, int root, RecvBuf data) {
  const int me = rank_in(comm);
  if (me < 0) throw std::logic_error("ibcast: not a member");
  return IbcastOp::launch(*machine_, comm, me, root, data, next_coll_tag(comm));
}

Status Rank::bcast(const Comm& comm, int root, RecvBuf data) {
  const sim::SpanScope span(*process_, obs::SpanKind::Collective, "bcast");
  return wait_outcome(*this, ibcast(comm, root, data));
}

Request Rank::ireduce(const Comm& comm, int root, SendBuf in, void* out,
                      ReduceFn fn) {
  const int me = rank_in(comm);
  if (me < 0) throw std::logic_error("ireduce: not a member");
  return IreduceOp::launch(*machine_, comm, me, root, in, out, std::move(fn),
                           next_coll_tag(comm));
}

Status Rank::reduce(const Comm& comm, int root, SendBuf in, void* out,
                    ReduceFn fn) {
  const sim::SpanScope span(*process_, obs::SpanKind::Collective, "reduce");
  return wait_outcome(*this, ireduce(comm, root, in, out, std::move(fn)));
}

Request Rank::iallreduce(const Comm& comm, SendBuf in, void* out, ReduceFn fn) {
  const int me = rank_in(comm);
  if (me < 0) throw std::logic_error("iallreduce: not a member");
  const int tag_reduce = next_coll_tag(comm);
  const int tag_bcast = next_coll_tag(comm);
  Machine& m = *machine_;
  const std::size_t bytes = in.on_wire();
  return CompositeOp::launch(
      m,
      [&m, comm, me, in, out, fn = std::move(fn), tag_reduce] {
        return IreduceOp::launch(m, comm, me, /*root=*/0, in, out, fn,
                                 tag_reduce);
      },
      [&m, comm, me, out, bytes, tag_bcast] {
        return IbcastOp::launch(m, comm, me, /*root=*/0, RecvBuf{out, bytes},
                                tag_bcast);
      });
}

Status Rank::allreduce(const Comm& comm, SendBuf in, void* out, ReduceFn fn) {
  const sim::SpanScope span(*process_, obs::SpanKind::Collective, "allreduce");
  return wait_outcome(*this, iallreduce(comm, in, out, std::move(fn)));
}

Request Rank::iallgatherv(const Comm& comm, SendBuf mine, void* out,
                          const std::vector<std::size_t>& counts) {
  const int me = rank_in(comm);
  if (me < 0) throw std::logic_error("iallgatherv: not a member");
  process_->advance(static_cast<util::SimTime>(
      machine_->config().network.coll_post_ns_per_peer * comm.size()));
  return IallgathervOp::launch(*machine_, comm, me, mine, out, counts,
                               next_coll_tag(comm));
}

Status Rank::allgatherv(const Comm& comm, SendBuf mine, void* out,
                        const std::vector<std::size_t>& counts) {
  const sim::SpanScope span(*process_, obs::SpanKind::Collective, "allgatherv");
  return wait_outcome(*this, iallgatherv(comm, mine, out, counts));
}

Request Rank::ialltoallv(const Comm& comm, const void* send_buf,
                         const std::vector<std::size_t>& send_counts,
                         void* recv_buf,
                         const std::vector<std::size_t>& recv_counts) {
  const int me = rank_in(comm);
  if (me < 0) throw std::logic_error("ialltoallv: not a member");
  process_->advance(static_cast<util::SimTime>(
      machine_->config().network.coll_post_ns_per_peer * comm.size()));
  const int tag_sync = next_coll_tag(comm);
  const int tag_data = next_coll_tag(comm);
  // A dense pairwise alltoall cannot complete until every member has
  // entered: stragglers stall their partners round by round. We model that
  // global coupling as an embedded dissemination barrier ahead of the data
  // rounds; nonblocking callers hide it under their overlapped compute,
  // blocking callers pay it in full — the gap Fig. 6 measures.
  Machine& m = *machine_;
  return CompositeOp::launch(
      m,
      [&m, comm, me, tag_sync] {
        return IbarrierOp::launch(m, comm, me, tag_sync);
      },
      [&m, comm, me, send_buf, &send_counts, recv_buf, &recv_counts, tag_data] {
        return IalltoallvOp::launch(m, comm, me, send_buf, send_counts,
                                    recv_buf, recv_counts, tag_data);
      });
}

Status Rank::alltoallv(const Comm& comm, const void* send_buf,
                       const std::vector<std::size_t>& send_counts,
                       void* recv_buf,
                       const std::vector<std::size_t>& recv_counts) {
  const sim::SpanScope span(*process_, obs::SpanKind::Collective, "alltoallv");
  return wait_outcome(
      *this, ialltoallv(comm, send_buf, send_counts, recv_buf, recv_counts));
}

Status Rank::gatherv(const Comm& comm, int root, SendBuf mine, void* out,
                     const std::vector<std::size_t>& counts) {
  const sim::SpanScope span(*process_, obs::SpanKind::Collective, "gatherv");
  const int me = rank_in(comm);
  if (me < 0) throw std::logic_error("gatherv: not a member");
  return wait_outcome(*this,
                      IgathervOp::launch(*machine_, comm, me, root, mine, out,
                                         counts, next_coll_tag(comm)));
}

}  // namespace ds::mpi
