// Process groups: ordered sets of world ranks (MPI_Group).
//
// Decoupling (paper Sec. II-C) starts by splitting COMM_WORLD's processes
// into disjoint groups, one per operation subset; Group is the value type
// those splits produce.
#pragma once

#include <vector>

namespace ds::mpi {

class Group {
 public:
  Group() = default;
  explicit Group(std::vector<int> world_ranks);

  /// The world group {0, 1, ..., n-1}.
  [[nodiscard]] static Group world(int n);

  [[nodiscard]] int size() const noexcept { return static_cast<int>(members_.size()); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  /// World rank of group member `r`; throws std::out_of_range if invalid.
  [[nodiscard]] int world_rank(int r) const;

  /// Rank of `world_rank` in this group, or -1 if not a member.
  [[nodiscard]] int rank_of(int world_rank) const noexcept;
  [[nodiscard]] bool contains(int world_rank) const noexcept {
    return rank_of(world_rank) >= 0;
  }

  /// New group keeping members at positions `ranks`, in that order.
  [[nodiscard]] Group include(const std::vector<int>& ranks) const;
  /// New group dropping members at positions `ranks` (order preserved).
  [[nodiscard]] Group exclude(const std::vector<int>& ranks) const;

  /// Members whose position in this group satisfies `pred(position)`.
  template <typename Pred>
  [[nodiscard]] Group filter_by_position(Pred pred) const {
    std::vector<int> out;
    for (int r = 0; r < size(); ++r)
      if (pred(r)) out.push_back(members_[static_cast<std::size_t>(r)]);
    return Group(std::move(out));
  }

  [[nodiscard]] const std::vector<int>& members() const noexcept { return members_; }

  [[nodiscard]] bool operator==(const Group& other) const noexcept {
    return members_ == other.members_;
  }

 private:
  std::vector<int> members_;  // position (group rank) -> world rank
};

}  // namespace ds::mpi
