#include "mpi/io.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "mpi/machine.hpp"
#include "mpi/rank.hpp"

namespace ds::mpi {

namespace {
/// Hold the fiber until virtual time `t` (I/O completion), traced as "io".
void wait_until(Rank& self, util::SimTime t, const char* label = "io") {
  const util::SimTime now = self.now();
  if (t > now) {
    self.process().trace_begin(label);
    self.process().advance(t - now);
    self.process().trace_end();
  }
}
}  // namespace

File::File(Machine& machine, Comm comm, std::string name, int aggregator_stride)
    : machine_(&machine),
      comm_(std::move(comm)),
      file_(machine.filesystem().open(name)),
      aggregator_stride_(std::max(1, aggregator_stride)) {}

Status File::write_all(Rank& self, SendBuf local) {
  const int me = self.rank_in(comm_);
  if (me < 0) throw std::logic_error("write_all: caller not in the file's communicator");
  const int size = comm_.size();
  const int tag = self.next_coll_tag(comm_);

  // Phase 0: everyone learns everyone's block size (the collective-buffering
  // equivalent of exchanging file-view offsets). Zero-initialized so a
  // block satisfied by failure reads as a zero-byte member — the phase
  // structure below then runs identically on every live member regardless
  // of where a crash lands (no per-rank decision that could diverge), which
  // is what makes the whole collective hang-free.
  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(size), 0);
  const std::uint64_t mine = local.on_wire();
  const std::vector<std::size_t> counts(static_cast<std::size_t>(size),
                                        sizeof(std::uint64_t));
  const Status exchanged =
      self.allgatherv(comm_, SendBuf::of(&mine, 1), sizes.data(), counts);

  std::vector<std::uint64_t> displs(static_cast<std::size_t>(size) + 1, 0);
  std::partial_sum(sizes.begin(), sizes.end(), displs.begin() + 1);
  const std::uint64_t base = file_->claim_collective(epoch_++, displs.back());

  // Phase 1+2: ship blocks to the group aggregator; aggregators write one
  // large contiguous chunk each.
  const int group = (me / aggregator_stride_) * aggregator_stride_;
  const int group_end = std::min(group + aggregator_stride_, size);
  const auto& net = machine_->config().network;

  if (me == group) {
    const std::uint64_t group_bytes =
        displs[static_cast<std::size_t>(group_end)] -
        displs[static_cast<std::size_t>(group)];
    // Assemble real content only for fully-real payloads; header-only or
    // synthetic blocks keep their sizes but store no bytes.
    const bool real = local.ptr != nullptr && local.bytes == local.on_wire();
    std::vector<std::byte> assembled;
    if (real) {
      assembled.resize(group_bytes);
      std::memcpy(assembled.data() +
                      (displs[static_cast<std::size_t>(me)] -
                       displs[static_cast<std::size_t>(group)]),
                  local.ptr, local.bytes);
    }
    std::vector<Request> recvs;
    for (int r = group + 1; r < group_end; ++r) {
      const std::uint64_t offset = displs[static_cast<std::size_t>(r)] -
                                   displs[static_cast<std::size_t>(group)];
      recvs.push_back(machine_->post_recv(
          comm_.context(), self.world_rank(), r, tag,
          real ? RecvBuf{assembled.data() + offset,
                         static_cast<std::size_t>(sizes[static_cast<std::size_t>(r)])}
               : RecvBuf::discard(static_cast<std::size_t>(
                     sizes[static_cast<std::size_t>(r)])),
          /*on_complete=*/{}, /*fused_wake=*/false,
          /*src_world=*/comm_.world_rank(r)));
    }
    self.wait_all(recvs);
    const util::SimTime done = machine_->filesystem().write(
        *file_, base + displs[static_cast<std::size_t>(group)], group_bytes,
        real ? assembled.data() : nullptr, self.now());
    wait_until(self, done);
  } else {
    // Non-aggregators ship their block (zero-byte blocks still sync).
    self.process().advance(net.send_overhead);
    const Request req = machine_->post_send(comm_.context(), me,
                                            self.world_rank(),
                                            comm_.world_rank(group), tag, local);
    self.wait(req);
  }
  const Status synced = self.barrier(comm_);
  Status out = synced;
  out.failed = exchanged.failed || synced.failed;
  return out;
}

void File::write_shared(Rank& self, SendBuf local) {
  const void* content =
      local.bytes == local.on_wire() ? local.ptr : nullptr;
  const auto result = machine_->filesystem().shared_append(
      *file_, local.on_wire(), content, self.now());
  wait_until(self, result.complete_at);
}

void File::write_at(Rank& self, std::uint64_t offset, SendBuf local) {
  const void* content =
      local.bytes == local.on_wire() ? local.ptr : nullptr;
  const util::SimTime done = machine_->filesystem().write(
      *file_, offset, local.on_wire(), content, self.now());
  wait_until(self, done);
}

Status File::set_view(Rank& self) {
  // Displacement recomputation is client-side; one member refreshes the file
  // metadata, then the collective synchronizes (the per-iteration cost the
  // paper attributes to iPIC3D's changing particle counts). If the metadata
  // rank is dead, survivors skip straight to the failure-aware barrier and
  // observe a failed outcome there — a writer crash inside collective IO
  // setup is recoverable, not a deadlock.
  if (self.rank_in(comm_) == 0) {
    const util::SimTime done = machine_->filesystem().metadata_rpc(self.now());
    wait_until(self, done, "view");
  }
  return self.barrier(comm_);
}

}  // namespace ds::mpi
