// Derived datatypes (sized descriptions of wire elements).
//
// MPIStream binds a datatype to every stream (paper Sec. III-A step 2) so
// elements can have non-contiguous layouts with zero-copy packing. We model
// the part that matters for timing and correctness: the wire size, the
// memory extent, and pack/unpack for strided (vector) layouts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ds::mpi {

struct DatatypeField;

class Datatype {
 public:
  /// Fundamental types.
  [[nodiscard]] static Datatype bytes(std::size_t n, std::string name = "bytes");
  [[nodiscard]] static Datatype int32();
  [[nodiscard]] static Datatype int64();
  [[nodiscard]] static Datatype float64();

  /// `count` consecutive copies of `base`.
  [[nodiscard]] static Datatype contiguous(std::size_t count, const Datatype& base);

  /// `count` blocks of `block_len` base elements, blocks `stride` base
  /// elements apart (MPI_Type_vector).
  [[nodiscard]] static Datatype vector(std::size_t count, std::size_t block_len,
                                       std::size_t stride, const Datatype& base);

  /// Heterogeneous record: fields at explicit byte offsets (MPI_Type_struct).
  [[nodiscard]] static Datatype record(const std::vector<DatatypeField>& fields,
                                       std::size_t extent,
                                       std::string name = "record");

  /// Bytes this type occupies on the wire (sum of leaf sizes).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Bytes the type spans in memory (>= size for strided/padded layouts).
  [[nodiscard]] std::size_t extent() const noexcept { return extent_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool is_contiguous() const noexcept { return size_ == extent_; }

  /// Gather this type's bytes from `src` (laid out with extent/gaps) into the
  /// dense wire representation at `dst`. `dst` must hold size() bytes.
  void pack(const std::byte* src, std::byte* dst) const;
  /// Scatter the dense wire representation back into memory layout.
  void unpack(const std::byte* src, std::byte* dst) const;

 private:
  Datatype(std::string name, std::size_t size, std::size_t extent)
      : name_(std::move(name)), size_(size), extent_(extent) {}

  struct Segment {
    std::size_t mem_offset;
    std::size_t length;
  };
  std::vector<Segment> segments_;  // dense leaf runs, in wire order
  std::string name_;
  std::size_t size_ = 0;
  std::size_t extent_ = 0;
};

/// One field of a record datatype: a member type at a byte offset.
struct DatatypeField {
  std::size_t offset;
  Datatype type;
};

}  // namespace ds::mpi
