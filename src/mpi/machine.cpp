#include "mpi/machine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "mpi/rank.hpp"
#include "util/rng.hpp"

namespace ds::mpi {

namespace {
/// The legacy engine switch and the obs config must agree: either one turns
/// span tracing on (engine.record_trace predates ObsConfig and existing
/// callers still set it directly).
MachineConfig normalized(MachineConfig c) {
  c.observability.trace = c.observability.trace || c.engine.record_trace;
  c.engine.record_trace = c.observability.trace;
  return c;
}
}  // namespace

Machine::Machine(MachineConfig config)
    : config_(normalized(std::move(config))),
      engine_(config_.engine),
      fabric_(config_.network, config_.world_size),
      filesystem_(config_.filesystem),
      world_(/*context=*/1, Group::world(config_.world_size)),
      mailboxes_(static_cast<std::size_t>(config_.world_size)),
      pids_(static_cast<std::size_t>(config_.world_size), -1),
      dead_(static_cast<std::size_t>(config_.world_size), 0),
      incarnation_(static_cast<std::size_t>(config_.world_size), 0) {
  if (config_.observability.metrics) {
    metrics_ = std::make_unique<obs::Metrics>();
    // Pull-style machine state: snapshotted by collect()/to_json(), never
    // touched on the per-message path.
    metrics_->add_collector([this](obs::Metrics& m) {
      m.gauge("engine.events_executed")
          .set(static_cast<double>(engine_.events_executed()));
      m.gauge("engine.virtual_time_s").set(util::to_seconds(engine_.now()));
      const PoolStats pools = pool_stats();
      m.gauge("pool.send.created").set(static_cast<double>(pools.send.created));
      m.gauge("pool.send.reused").set(static_cast<double>(pools.send.reused()));
      m.gauge("pool.send.outstanding")
          .set(static_cast<double>(pools.send.outstanding()));
      m.gauge("pool.recv.created").set(static_cast<double>(pools.recv.created));
      m.gauge("pool.recv.reused").set(static_cast<double>(pools.recv.reused()));
      m.gauge("pool.recv.outstanding")
          .set(static_cast<double>(pools.recv.outstanding()));
      m.gauge("resilience.failure_epoch")
          .set(static_cast<double>(failure_epoch_));
      m.gauge("resilience.rejoin_epoch").set(static_cast<double>(rejoin_epoch_));
      fabric_.sample_metrics(m);
    });
  }
}

Machine::~Machine() = default;

util::SimTime Machine::run(std::function<void(Rank&)> program) {
  program_ = std::move(program);
  for (int r = 0; r < config_.world_size; ++r) spawn_rank(r);
  install_faults();
  engine_.run();
  return engine_.now();
}

void Machine::spawn_rank(int r) {
  pids_[static_cast<std::size_t>(r)] =
      engine_.spawn([this, r](sim::Process& p) {
        // Every incarnation of a world rank records on the same trace track,
        // even though restart_rank fibers get fresh engine pids.
        p.set_trace_rank(r);
        Rank rank(*this, p, r);
        try {
          program_(rank);
        } catch (const RankFailure&) {
          // Fail-stop: the crashed fiber unwinds here and simply ends; the
          // rest of the simulation keeps running.
        }
      });
}

void Machine::install_faults() {
  config_.faults.validate(config_.world_size);
  for (const sim::FaultEvent& ev : config_.faults.events)
    engine_.schedule(ev.at, [this, ev] { apply_fault(ev); });
}

void Machine::apply_fault(const sim::FaultEvent& event) {
  switch (event.kind) {
    case sim::FaultEvent::Kind::RankCrash:
      kill_rank(event.rank);
      break;
    case sim::FaultEvent::Kind::RankRestart:
      restart_rank(event.rank);
      break;
    case sim::FaultEvent::Kind::LinkDegrade:
      if (auto* t = engine_.trace())
        t->instant(event.rank, engine_.now(), "link-degrade");
      if (event.rank_b >= 0) {
        // Path form: the fault addresses the shared links on the topology
        // route (a cable/switch-port failure). No compute perturbation —
        // the endpoints' cores are healthy.
        fabric_.degrade_path(event.rank, event.rank_b, event.factor);
        if (event.duration > 0) {
          engine_.schedule_after(
              event.duration, [this, a = event.rank, b = event.rank_b] {
                fabric_.degrade_path(a, b, 1.0);
              });
        }
        break;
      }
      fabric_.set_degrade(event.rank, event.factor);
      engine_.set_compute_degrade(pids_[static_cast<std::size_t>(event.rank)],
                                  event.factor);
      if (event.duration > 0) {
        engine_.schedule_after(event.duration, [this, r = event.rank] {
          fabric_.set_degrade(r, 1.0);
          engine_.set_compute_degrade(pids_[static_cast<std::size_t>(r)], 1.0);
        });
      }
      break;
  }
}

void Machine::kill_rank(int world_rank) {
  auto& dead = dead_.at(static_cast<std::size_t>(world_rank));
  if (dead != 0) return;
  dead = 1;
  ++failure_epoch_;
  if (auto* t = engine_.trace()) {
    // Fail-stop cuts the rank's activity off mid-span; close what is open so
    // the track stays balanced, then mark the crash as an instant event.
    t->instant(world_rank, engine_.now(), "crash");
    t->close_all(world_rank, engine_.now());
  }
  if (metrics_) metrics_->counter("resilience.crashes", world_rank).add();

  // Drain the dead rank's mailbox. Unexpected arrivals are dropped — taking
  // them releases the queue's references, so the pooled send ops recycle
  // (completing any rendezvous sender still waiting on a match). Posted
  // receives complete with Status::failed, waking the dead fiber so its next
  // wait() observes the crash and unwinds.
  auto& box = mailboxes_.at(static_cast<std::size_t>(world_rank));
  for (auto& [context, q] : box.contexts) {
    (void)context;
    while (!q.unexpected.empty()) {
      const auto msg = q.unexpected.take(0);
      if (!msg->complete) complete_op(*msg);
    }
    while (!q.posted.empty()) {
      const auto recv = q.posted.take(0);
      recv->status = Status{};
      recv->status.failed = true;
      complete_op(*recv);
    }
  }
  // The dead fiber may be parked in probe(); wake it so it can unwind.
  for (const int pid : box.probe_waiters) engine_.wake(pid);
  box.probe_waiters.clear();

  // Satisfied-by-failure on the survivors: a posted receive that names the
  // dead rank as its only possible sender can never match now. Complete each
  // with Status::failed so failure-aware callers (collectives, p2p waits,
  // aggregated IO) observe the crash instead of deadlocking. Collect before
  // completing: completions run continuations that post new receives into
  // the very queues being scanned (and can create new context buckets);
  // interior take() erases, so scan each queue high-to-low.
  std::vector<detail::OpRef<detail::RecvOp>> orphaned;
  for (int r = 0; r < config_.world_size; ++r) {
    if (r == world_rank || dead_[static_cast<std::size_t>(r)] != 0) continue;
    for (auto& [context, q] : mailboxes_[static_cast<std::size_t>(r)].contexts) {
      (void)context;
      for (std::size_t i = q.posted.size(); i-- > 0;) {
        if (q.posted[i]->src_world == world_rank)
          orphaned.push_back(q.posted.take(i));
      }
    }
  }
  for (const auto& recv : orphaned) {
    recv->status = Status{};
    recv->status.failed = true;
    complete_op(*recv);
  }

  // Wake blocked protocol loops (credit waits) on every rank: routing toward
  // the dead rank must be re-evaluated.
  for (const int pid : failure_waiters_) engine_.wake(pid);
  failure_waiters_.clear();
}

void Machine::restart_rank(int world_rank) {
  auto& dead = dead_.at(static_cast<std::size_t>(world_rank));
  if (dead == 0) return;
  dead = 0;
  ++incarnation_[static_cast<std::size_t>(world_rank)];
  ++rejoin_epoch_;
  if (auto* t = engine_.trace())
    t->instant(world_rank, engine_.now(), "rejoin");
  if (metrics_) metrics_->counter("resilience.rejoins", world_rank).add();
  spawn_rank(world_rank);
  // Rejoin is a membership change exactly like a crash: blocked protocol
  // loops (credit/term waits) must re-evaluate routing so flows the adopters
  // took over can be rebalanced back to the respawned rank.
  for (const int pid : failure_waiters_) engine_.wake(pid);
  failure_waiters_.clear();
}

std::shared_ptr<resilience::MembershipLedger> Machine::membership_ledger(
    std::uint64_t context, int consumer_slots) {
  auto& slot = ledgers_[context];
  if (!slot) slot = std::make_shared<resilience::MembershipLedger>(consumer_slots);
  return slot;
}

std::shared_ptr<resilience::Agreement> Machine::agreement(std::uint64_t key,
                                                          int size) {
  auto& slot = agreements_[key];
  if (!slot) slot = std::make_shared<resilience::Agreement>(size);
  return slot;
}

void Machine::release_agreement(std::uint64_t key) { agreements_.erase(key); }

void Machine::add_failure_waiter(int pid) {
  // Registrations outlive individual waits (they are only consumed by the
  // next crash), so keep the list unique: one entry per fiber bounds it by
  // the world size instead of growing with every credit-stall wakeup.
  for (const int waiting : failure_waiters_)
    if (waiting == pid) return;
  failure_waiters_.push_back(pid);
}

std::uint64_t Machine::derive_context(std::uint64_t parent, std::uint64_t salt,
                                      std::uint64_t color) noexcept {
  // SplitMix-style avalanche over the triple; deterministic everywhere.
  std::uint64_t state = parent * 0x9E3779B97F4A7C15ull + salt;
  (void)util::splitmix64(state);
  state ^= color * 0xC2B2AE3D27D4EB4Full;
  return util::splitmix64(state) | 1ull;  // never 0 (0 = invalid)
}

void Machine::complete_op(detail::OpState& op) {
  op.complete = true;
  if (op.on_complete) {
    auto continuation = std::move(op.on_complete);
    op.on_complete = nullptr;
    continuation();
  }
  if (op.waiter_pid < 0) return;
  if (op.kind == detail::OpKind::Recv) {
    auto& recv = static_cast<detail::RecvOp&>(op);
    if (recv.fused_wake && !recv.overhead_charged) {
      // Fused wake/advance: resume the blocked waiter at now + o_r with the
      // receive overhead pre-charged, instead of waking it now and letting
      // Rank::wait run a separate o_r advance (one more event plus a
      // context-switch pair per message).
      recv.overhead_charged = true;
      engine_.wake_at(op.waiter_pid,
                      engine_.now() + config_.network.recv_overhead);
      return;
    }
  }
  engine_.wake(op.waiter_pid);
}

detail::OpRef<detail::SendOp> Machine::post_send(std::uint64_t context,
                                                 int src_comm_rank,
                                                 int src_world, int dst_world,
                                                 int tag, SendBuf data,
                                                 sim::Callback on_complete) {
  auto op = send_pool_.acquire();
  op->context = context;
  op->src_comm_rank = src_comm_rank;
  op->src_world = src_world;
  op->dst_world = dst_world;
  op->tag = tag;
  op->bytes = data.on_wire();
  op->on_complete = std::move(on_complete);
  if (data.ptr && data.bytes > 0) {
    // Buffered-send semantics: the payload is copied out immediately (into
    // the op's inline buffer for eager-class sizes), so the caller may reuse
    // its buffer as soon as post_send returns.
    op->store_payload(data.ptr, data.bytes);
  }
  op->mode = op->bytes > fabric_.config().eager_threshold
                 ? detail::SendMode::Rendezvous
                 : detail::SendMode::Eager;

  // Fault injection: a crashed sender emits nothing (its fiber is unwinding
  // and must not leave traffic behind); the op completes inert.
  if (rank_failed(src_world)) {
    complete_op(*op);
    return op;
  }

  const util::SimTime now = engine_.now();
  if (op->mode == detail::SendMode::Eager) {
    // Payload moves immediately; envelope+payload as one fabric message.
    const auto sched = fabric_.schedule_message(src_world, dst_world,
                                                kControlBytes + op->bytes, now);
    engine_.schedule(sched.deliver_at, [this, op] { deposit(op); });
    engine_.schedule(sched.sender_free_at, [this, op] { complete_op(*op); });
  } else {
    // Rendezvous: only the envelope moves now; the payload transfer is set
    // up in start_transfer once a matching receive exists.
    const auto sched =
        fabric_.schedule_message(src_world, dst_world, kControlBytes, now);
    engine_.schedule(sched.deliver_at, [this, op] { deposit(op); });
  }
  return op;
}

detail::OpRef<detail::RecvOp> Machine::post_recv(std::uint64_t context,
                                                 int dst_world, int src_filter,
                                                 int tag_filter, RecvBuf out,
                                                 sim::Callback on_complete,
                                                 bool fused_wake,
                                                 int src_world) {
  auto op = recv_pool_.acquire();
  op->context = context;
  op->dst_world = dst_world;
  op->src_filter = src_filter;
  op->tag_filter = tag_filter;
  op->out = out.ptr;
  op->capacity = out.bytes;
  op->on_complete = std::move(on_complete);
  op->fused_wake = fused_wake;
  op->src_world = src_world;

  auto& box = mailboxes_.at(static_cast<std::size_t>(dst_world));
  auto& q = box.touch(context);
  // The unexpected queue is scanned first even when the named sender is
  // already dead: a message that outran the crash still matches.
  for (std::size_t i = 0; i < q.unexpected.size(); ++i) {
    if (detail::matches(*op, *q.unexpected[i])) {
      const auto send = q.unexpected.take(i);
      start_transfer(op, send);
      return op;
    }
  }
  if (rank_failed(dst_world) || (src_world >= 0 && rank_failed(src_world))) {
    // Satisfied-by-failure: either the only sender that could match is dead,
    // or the receiver itself is — arrivals toward it are dropped, so the
    // receive could never complete. Failing it immediately lets a crashed
    // rank's collective state machine run to structural completion (event
    // context, no fiber) instead of parking pool slots in a dead mailbox.
    op->status = Status{};
    op->status.failed = true;
    complete_op(*op);
    return op;
  }
  q.posted.push_back(op);
  return op;
}

void Machine::deposit(const detail::OpRef<detail::SendOp>& msg) {
  // Fault injection: arrivals at a crashed rank are dropped, and so are
  // arrivals *from* a rank that crashed while the message was in flight —
  // fail-stop cuts traffic off at the crash instant, matching the repair
  // protocols (a dead producer's undurable in-flight frames are excluded)
  // and the satisfied-by-failure receives (which have already completed
  // with Status::failed and must not be shadowed by a late arrival that
  // would then sit in the unexpected queue forever, leaking its pool slot).
  // Completing the op here keeps rendezvous senders (whose completion
  // normally waits for a matching receive) from blocking forever.
  if (rank_failed(msg->dst_world) || rank_failed(msg->src_world)) {
    if (!msg->complete) complete_op(*msg);
    return;
  }
  auto& box = mailboxes_.at(static_cast<std::size_t>(msg->dst_world));
  auto& q = box.touch(msg->context);
  for (std::size_t i = 0; i < q.posted.size(); ++i) {
    if (detail::matches(*q.posted[i], *msg)) {
      const auto recv = q.posted.take(i);
      start_transfer(recv, msg);
      return;
    }
  }
  q.unexpected.push_back(msg);
  if (!box.probe_waiters.empty()) {
    // wake() only enqueues resume events, so iterating in place is safe;
    // clear() (not a move) keeps the vector's capacity for the next waiter.
    for (int pid : box.probe_waiters) engine_.wake(pid);
    box.probe_waiters.clear();
  }
}

void Machine::start_transfer(const detail::OpRef<detail::RecvOp>& recv,
                             const detail::OpRef<detail::SendOp>& send) {
  if (send->mode == detail::SendMode::Eager) {
    finish_delivery(recv, send);  // payload already arrived with the envelope
    return;
  }
  // Rendezvous: clear-to-send control back to the sender, then the payload
  // crosses the fabric; both endpoints complete on their own schedule.
  const util::SimTime now = engine_.now();
  const auto cts = fabric_.schedule_message(send->dst_world, send->src_world,
                                            kControlBytes, now);
  const auto payload = fabric_.schedule_message(send->src_world, send->dst_world,
                                                send->bytes, cts.deliver_at);
  engine_.schedule(payload.sender_free_at, [this, send] { complete_op(*send); });
  engine_.schedule(payload.deliver_at,
                   [this, recv, send] { finish_delivery(recv, send); });
}

void Machine::finish_delivery(const detail::OpRef<detail::RecvOp>& recv,
                              const detail::OpRef<detail::SendOp>& send) {
  if (recv->out && send->has_payload()) {
    std::memcpy(recv->out, send->payload(),
                std::min(recv->capacity, send->payload_bytes));
  }
  recv->status = Status{send->src_comm_rank, send->tag, send->bytes,
                        send->bytes > 0 && !send->has_payload()};
  if (send->mode == detail::SendMode::Rendezvous) {
    // The sender-side completion event fires independently; nothing to do.
  }
  complete_op(*recv);
}

bool Machine::match_probe(std::uint64_t context, int dst_world, int src_filter,
                          int tag_filter, Status* out) {
  const auto& box = mailboxes_.at(static_cast<std::size_t>(dst_world));
  const auto it = box.contexts.find(context);
  if (it == box.contexts.end()) return false;
  const auto& unexpected = it->second.unexpected;
  for (std::size_t i = 0; i < unexpected.size(); ++i) {
    const auto& msg = unexpected[i];
    if (detail::matches_filters(src_filter, tag_filter, *msg)) {
      if (out) *out = Status{msg->src_comm_rank, msg->tag, msg->bytes};
      return true;
    }
  }
  return false;
}

void Machine::add_probe_waiter(int dst_world, int pid) {
  mailboxes_.at(static_cast<std::size_t>(dst_world)).probe_waiters.push_back(pid);
}

}  // namespace ds::mpi
