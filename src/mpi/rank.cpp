#include "mpi/rank.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ds::mpi {

namespace {
[[nodiscard]] int require_member(const Comm& comm, int world_rank,
                                 const char* who) {
  const int r = comm.rank_of_world(world_rank);
  if (r < 0)
    throw std::logic_error(std::string(who) + ": calling rank is not in the communicator");
  return r;
}

/// Span kind for a blocked wait on `req`: receives show up as recv-blocked
/// time, everything else (sends, rendezvous completions) as send-blocked.
[[nodiscard]] obs::SpanKind blocked_kind(const Request& req) noexcept {
  return req->kind == detail::OpKind::Recv ? obs::SpanKind::RecvBlocked
                                           : obs::SpanKind::SendBlocked;
}
}  // namespace

Request Rank::isend(const Comm& comm, int dst, int tag, SendBuf data) {
  machine_->ensure_alive(world_rank_);
  const int me = require_member(comm, world_rank_, "isend");
  if (tag < kMinUserTag) throw std::invalid_argument("isend: user tags must be >= 0");
  process_->advance(machine_->config().network.send_overhead);
  return machine_->post_send(comm.context(), me, world_rank_,
                             comm.world_rank(dst), tag, data);
}

Request Rank::irecv(const Comm& comm, int src, int tag, RecvBuf out) {
  machine_->ensure_alive(world_rank_);
  require_member(comm, world_rank_, "irecv");
  if (tag != kAnyTag && tag < kMinUserTag)
    throw std::invalid_argument("irecv: user tags must be >= 0 or kAnyTag");
  // Deliberately not failure-aware (src_world stays kAnySource): a posted
  // p2p receive toward a crashed peer remains posted and can match the
  // peer's restarted incarnation — restart-transparent point-to-point is
  // part of the rejoin contract. Collectives, agree, and aggregated IO opt
  // into satisfied-by-failure instead, because a restarted incarnation
  // re-enters those protocols from the beginning.
  return machine_->post_recv(comm.context(), world_rank_, src, tag, out);
}

void Rank::send(const Comm& comm, int dst, int tag, SendBuf data) {
  wait(isend(comm, dst, tag, data));
}

Status Rank::recv(const Comm& comm, int src, int tag, RecvBuf out) {
  const Request req = irecv(comm, src, tag, out);
  wait(req);
  return req->status;
}

Status Rank::sendrecv(const Comm& comm, int dst, int send_tag, SendBuf data,
                      int src, int recv_tag, RecvBuf out) {
  const Request r = irecv(comm, src, recv_tag, out);
  const Request s = isend(comm, dst, send_tag, data);
  wait(s);
  wait(r);
  return r->status;
}

void Rank::wait(const Request& req) {
  if (!req) throw std::invalid_argument("wait: null request");
  machine_->ensure_alive(world_rank_);
  if (!req->complete) {
    // Span only over actual blocking: an already-complete request costs one
    // branch, and traces show genuine blocked time rather than wait() calls.
    const sim::SpanScope span(
        *process_, blocked_kind(req),
        req->kind == detail::OpKind::Recv ? "recv-wait" : "send-wait");
    while (!req->complete) {
      req->waiter_pid = process_->id();
      process_->set_state_note("blocked in wait()");
      process_->suspend();
      // Fail-stop observation point: kill_rank completes this rank's posted
      // receives (Status::failed) and wakes it precisely so the fiber lands
      // here and unwinds.
      machine_->ensure_alive(world_rank_);
    }
  }
  req->waiter_pid = -1;
  process_->set_state_note({});
  charge_recv_overhead(req);
}

bool Rank::test(const Request& req) {
  if (!req) throw std::invalid_argument("test: null request");
  if (!req->complete) return false;
  charge_recv_overhead(req);
  return true;
}

void Rank::wait_all(std::span<const Request> reqs) {
  for (const Request& r : reqs) wait(r);
}

std::size_t Rank::wait_any(std::span<const Request> reqs) {
  if (reqs.empty()) throw std::invalid_argument("wait_any: empty request list");
  const sim::SpanScope span(*process_, blocked_kind(reqs[0]), "wait-any");
  while (true) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i]->complete) {
        for (const Request& r : reqs) r->waiter_pid = -1;
        process_->set_state_note({});
        charge_recv_overhead(reqs[i]);
        return i;
      }
    }
    for (const Request& r : reqs) r->waiter_pid = process_->id();
    process_->set_state_note("blocked in wait_any()");
    process_->suspend();
    machine_->ensure_alive(world_rank_);
  }
}

Status Rank::probe(const Comm& comm, int src, int tag) {
  require_member(comm, world_rank_, "probe");
  Status st;
  const sim::SpanScope span(*process_, obs::SpanKind::RecvBlocked, "probe");
  while (!machine_->match_probe(comm.context(), world_rank_, src, tag, &st)) {
    machine_->add_probe_waiter(world_rank_, process_->id());
    process_->set_state_note("blocked in probe()");
    process_->suspend();
    machine_->ensure_alive(world_rank_);
  }
  process_->set_state_note({});
  return st;
}

bool Rank::iprobe(const Comm& comm, int src, int tag, Status* status) {
  require_member(comm, world_rank_, "iprobe");
  return machine_->match_probe(comm.context(), world_rank_, src, tag, status);
}

namespace {
/// Freeze the agreement iff every group member has either deposited or is
/// dead in the machine's failure record. Idempotent; the first observer
/// snapshots value + dead set and wakes everyone still blocked.
bool try_freeze(Machine& machine, resilience::Agreement& a, const Comm& comm) {
  if (a.frozen) return true;
  for (int r = 0; r < comm.size(); ++r) {
    if (!a.deposited[static_cast<std::size_t>(r)] &&
        !machine.rank_failed(comm.world_rank(r)))
      return false;
  }
  a.frozen = true;
  for (int r = 0; r < comm.size(); ++r) {
    const auto idx = static_cast<std::size_t>(r);
    if (a.deposited[idx]) a.value |= a.contribution[idx];
    if (machine.rank_failed(comm.world_rank(r))) a.dead.push_back(r);
  }
  for (const int pid : a.waiters) machine.engine().wake(pid);
  a.waiters.clear();
  return true;
}
}  // namespace

AgreeResult Rank::agree(const Comm& comm, std::uint64_t contribution) {
  machine_->ensure_alive(world_rank_);
  const sim::SpanScope span(*process_, obs::SpanKind::Agreement, "agree");
  const int me = require_member(comm, world_rank_, "agree");
  // All participants of the same call derive the same ledger key from the
  // communicator and the per-context agreement sequence (same ordering
  // contract as collectives). A restarted incarnation restarts its sequence
  // at 0, which is consistent as long as it re-enters the protocol from the
  // beginning — the same contract attach-based rejoin already follows.
  const std::uint64_t seq = agree_seq_[comm.context()]++;
  const std::uint64_t key =
      Machine::derive_context(comm.context(), 0xA64EE0ull, seq);
  auto ledger = machine_->agreement(key, comm.size());
  const auto idx = static_cast<std::size_t>(me);
  if (!ledger->deposited[idx]) {
    ledger->deposited[idx] = 1;
    ledger->contribution[idx] = contribution;
    ++ledger->readers_left;
    // This deposit may complete the freeze condition for blocked peers.
    for (const int pid : ledger->waiters) machine_->engine().wake(pid);
    ledger->waiters.clear();
  }
  // The agreement's wire cost: log-P failure-aware synchronization rounds.
  // Its outcome is irrelevant (the ledger is the source of truth); what
  // matters is that it never hangs and prices the exchange.
  wait(ibarrier(comm));
  while (!ledger->frozen && !try_freeze(*machine_, *ledger, comm)) {
    ledger->waiters.push_back(process_->id());
    machine_->add_failure_waiter(process_->id());
    process_->set_state_note("blocked in agree()");
    process_->suspend();
    machine_->ensure_alive(world_rank_);
  }
  process_->set_state_note({});
  AgreeResult out;
  out.value = ledger->value;
  for (int r = 0; r < comm.size(); ++r) out.survivors.push_back(comm.world_rank(r));
  for (const int r : ledger->dead) {
    out.failed.push_back(comm.world_rank(r));
    out.survivors.erase(std::find(out.survivors.begin(), out.survivors.end(),
                                  comm.world_rank(r)));
  }
  // A failure-detecting agreement is a membership event worth a marker on
  // the timeline, next to the crash/rejoin instants it reacts to.
  if (!out.failed.empty()) process_->trace_instant("agreement");
  // Drop the ledger once the last live depositor has read the frozen
  // result. (A depositor that crashes post-freeze without reading leaves
  // the entry behind — bounded by such crashes, negligible.)
  if (--ledger->readers_left == 0) machine_->release_agreement(key);
  return out;
}

int Rank::next_coll_tag(const Comm& comm) {
  const std::uint64_t seq = coll_seq_[comm.context()]++;
  // Negative tags are reserved for the runtime; user tags are >= 0.
  return -2 - static_cast<int>(seq % 1'000'000'000ull);
}

void Rank::charge_recv_overhead(const Request& req) {
  if (req->kind != detail::OpKind::Recv) return;
  auto* recv = static_cast<detail::RecvOp*>(req.get());
  if (!recv->overhead_charged) {
    recv->overhead_charged = true;
    process_->advance(machine_->config().network.recv_overhead);
  }
}

Comm Rank::split(const Comm& comm, int color, int key) {
  const int me = require_member(comm, world_rank_, "split");
  const int size = comm.size();

  // Allgather (color, key) pairs — the same wire traffic MPI_Comm_split pays.
  std::vector<std::int32_t> mine = {color, key};
  std::vector<std::int32_t> all(static_cast<std::size_t>(2 * size));
  const std::vector<std::size_t> counts(static_cast<std::size_t>(size),
                                        2 * sizeof(std::int32_t));
  allgatherv(comm, SendBuf::of(mine.data(), 2), all.data(), counts);

  const std::uint64_t epoch = split_seq_[comm.context()]++;
  if (color < 0) return Comm{};  // MPI_UNDEFINED: not a member of any result

  // Members of my color, ordered by (key, old rank); stable sort keeps old
  // rank order among equal keys, matching MPI_Comm_split.
  std::vector<std::pair<std::int32_t, int>> picked;  // (key, old comm rank)
  for (int r = 0; r < size; ++r) {
    if (all[static_cast<std::size_t>(2 * r)] == color)
      picked.emplace_back(all[static_cast<std::size_t>(2 * r + 1)], r);
  }
  std::stable_sort(picked.begin(), picked.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<int> world_ranks;
  world_ranks.reserve(picked.size());
  for (const auto& [k, old_rank] : picked)
    world_ranks.push_back(comm.world_rank(old_rank));

  const std::uint64_t ctx = Machine::derive_context(
      comm.context(), 0x5B17'0000ull + epoch,
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(color)));
  (void)me;
  return Comm(ctx, Group(std::move(world_ranks)));
}

}  // namespace ds::mpi
