// MPI-IO-style file access over the parallel file-system model.
//
// Implements the three write paths the particle-I/O experiment compares
// (paper Sec. IV-D2, Fig. 8):
//
//  * write_all    — collective two-phase: exchange sizes, ship blocks to one
//    aggregator per node, aggregators issue large contiguous writes, then a
//    barrier. Matches ROMP/ROMIO-style collective buffering.
//  * write_shared — independent append through the shared file pointer; each
//    call serializes at the metadata server's lock before data moves.
//  * write_at     — independent write at an explicit offset (used by the
//    decoupled I/O group, which computes its own offsets and buffers big).
//
// set_view models the per-iteration file-view recomputation iPIC3D's
// collective path needs because particle counts change every step: one
// metadata RPC per rank plus a synchronizing barrier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fs/filesystem.hpp"
#include "mpi/comm.hpp"
#include "mpi/types.hpp"

namespace ds::mpi {

class Machine;
class Rank;

class File {
 public:
  /// Opens (creates) `name` on `machine`'s file system, shared by the
  /// members of `comm`. Every member must construct its own File handle.
  File(Machine& machine, Comm comm, std::string name,
       int aggregator_stride = 32);

  /// Collective append of each member's block, laid out in rank order.
  /// All members must call; `local.ptr` may be null (synthetic).
  ///
  /// Failure-aware: a member crash never hangs the collective. The phase
  /// structure runs to completion on every live member (a dead member's
  /// block reads as zero bytes, its exchanges are satisfied by failure) and
  /// the returned status carries `failed = true` on members that observed
  /// the crash. File content of a failed collective write is undefined;
  /// recovery is agree() + a fresh File over the surviving membership.
  Status write_all(Rank& self, SendBuf local);

  /// Independent shared-pointer append.
  void write_shared(Rank& self, SendBuf local);

  /// Independent write at an explicit offset.
  void write_at(Rank& self, std::uint64_t offset, SendBuf local);

  /// Collective file-view (re)definition: per-rank metadata RPC + barrier.
  /// Failure-aware like write_all (a crash of the metadata rank — or any
  /// member — yields a failed status on the survivors, never a deadlock).
  Status set_view(Rank& self);

  [[nodiscard]] fs::SimFile& sim_file() noexcept { return *file_; }

 private:
  Machine* machine_;
  Comm comm_;
  fs::SimFile* file_;
  int aggregator_stride_;
  std::uint64_t epoch_ = 0;  ///< collective-write sequence on this handle
};

}  // namespace ds::mpi
