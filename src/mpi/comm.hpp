// Communicators: a Group plus an isolated matching context.
//
// Messages match on (context, source, tag); two communicators never exchange
// traffic even with identical members, which is what lets MPIStream channels
// coexist with application point-to-point traffic undisturbed.
#pragma once

#include <cstdint>
#include <memory>

#include "mpi/group.hpp"

namespace ds::mpi {

class Comm {
 public:
  Comm() = default;
  Comm(std::uint64_t context, Group group)
      : state_(std::make_shared<const State>(State{context, std::move(group)})) {}

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(state_); }
  [[nodiscard]] std::uint64_t context() const noexcept { return state_->context; }
  [[nodiscard]] const Group& group() const noexcept { return state_->group; }
  [[nodiscard]] int size() const noexcept { return state_->group.size(); }

  /// Translate a rank in this communicator to a world rank.
  [[nodiscard]] int world_rank(int rank) const { return state_->group.world_rank(rank); }
  /// Rank of a world rank in this communicator (-1 if not a member).
  [[nodiscard]] int rank_of_world(int world_rank) const noexcept {
    return state_->group.rank_of(world_rank);
  }

  [[nodiscard]] bool operator==(const Comm& other) const noexcept {
    return state_ && other.state_ && state_->context == other.state_->context;
  }

 private:
  struct State {
    std::uint64_t context = 0;
    Group group;
  };
  std::shared_ptr<const State> state_;
};

}  // namespace ds::mpi
