// 3-D Cartesian process topology (MPI_Cart_* equivalents).
//
// The CG solver and the PIC mini-app decompose their domains over a 3-D
// process grid; the reference particle exchange forwards along the six
// direct neighbours, bounding the step count by DimX+DimY+DimZ (paper
// Sec. IV-D1).
#pragma once

#include <array>
#include <vector>

#include "mpi/comm.hpp"

namespace ds::mpi {

class CartTopology {
 public:
  CartTopology(std::array<int, 3> dims, std::array<bool, 3> periodic);

  /// Factor `nprocs` into three dims as close to a cube as possible
  /// (largest factors first, like MPI_Dims_create).
  [[nodiscard]] static std::array<int, 3> dims_create(int nprocs);

  [[nodiscard]] const std::array<int, 3>& dims() const noexcept { return dims_; }
  [[nodiscard]] int size() const noexcept { return dims_[0] * dims_[1] * dims_[2]; }

  /// Row-major rank of coordinates (x slowest, z fastest).
  [[nodiscard]] int rank_of(const std::array<int, 3>& coords) const;
  [[nodiscard]] std::array<int, 3> coords_of(int rank) const;

  /// Neighbour `disp` steps along `dim` from `rank`; -1 when the walk falls
  /// off a non-periodic boundary (MPI_PROC_NULL semantics).
  [[nodiscard]] int neighbor(int rank, int dim, int disp) const;

  /// The six face neighbours (-x, +x, -y, +y, -z, +z); entries may be -1.
  [[nodiscard]] std::array<int, 6> face_neighbors(int rank) const;

  /// All ranks within Chebyshev distance 1 (the Moore neighbourhood: faces,
  /// edges and corners — up to 26), excluding `rank` itself and anything
  /// beyond a non-periodic boundary. Sorted ascending.
  [[nodiscard]] std::vector<int> moore_neighbors(int rank) const;

 private:
  std::array<int, 3> dims_;
  std::array<bool, 3> periodic_;
};

}  // namespace ds::mpi
