#include "util/options.hpp"

#include <cstdlib>

namespace ds::util {

namespace {
[[nodiscard]] const char* get(const char* name) { return std::getenv(name); }
}  // namespace

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = get(name);
  if (!v || !*v) return fallback;
  return std::strtoll(v, nullptr, 10);
}

double env_double(const char* name, double fallback) {
  const char* v = get(name);
  if (!v || !*v) return fallback;
  return std::strtod(v, nullptr);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = get(name);
  return (v && *v) ? std::string{v} : fallback;
}

bool env_flag(const char* name, bool fallback) {
  const char* v = get(name);
  if (!v || !*v) return fallback;
  return !(v[0] == '0' || v[0] == 'f' || v[0] == 'F' || v[0] == 'n' || v[0] == 'N');
}

BenchOptions BenchOptions::from_env() {
  BenchOptions o;
  o.max_procs = static_cast<int>(env_int("DS_BENCH_MAX_PROCS", o.max_procs));
  o.repetitions = static_cast<int>(env_int("DS_BENCH_REPS", o.repetitions));
  o.fast = env_flag("DS_BENCH_FAST", o.fast);
  o.seed = static_cast<std::uint64_t>(env_int("DS_BENCH_SEED", static_cast<std::int64_t>(o.seed)));
  return o;
}

}  // namespace ds::util
