#include "util/options.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace ds::util {

namespace {
[[nodiscard]] const char* get(const char* name) { return std::getenv(name); }
}  // namespace

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = get(name);
  if (!v || !*v) return fallback;
  return std::strtoll(v, nullptr, 10);
}

double env_double(const char* name, double fallback) {
  const char* v = get(name);
  if (!v || !*v) return fallback;
  return std::strtod(v, nullptr);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = get(name);
  return (v && *v) ? std::string{v} : fallback;
}

bool env_flag(const char* name, bool fallback) {
  const char* v = get(name);
  if (!v || !*v) return fallback;
  return !(v[0] == '0' || v[0] == 'f' || v[0] == 'F' || v[0] == 'n' || v[0] == 'N');
}

BenchOptions BenchOptions::from_env() {
  BenchOptions o;
  o.max_procs = static_cast<int>(env_int("DS_BENCH_MAX_PROCS", o.max_procs));
  o.repetitions = static_cast<int>(env_int("DS_BENCH_REPS", o.repetitions));
  o.fast = env_flag("DS_BENCH_FAST", o.fast);
  o.seed = static_cast<std::uint64_t>(env_int("DS_BENCH_SEED", static_cast<std::int64_t>(o.seed)));
  o.topology = env_string("DS_BENCH_TOPOLOGY", o.topology);
  o.network = env_string("DS_BENCH_NETWORK", o.network);
  o.taper = env_double("DS_BENCH_TAPER", o.taper);
  return o;
}

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions o = from_env();
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    const auto value = [&](std::string_view key) {
      return std::string(arg.substr(key.size()));
    };
    if (arg.rfind("--max-procs=", 0) == 0) {
      o.max_procs = std::atoi(value("--max-procs=").c_str());
    } else if (arg.rfind("--reps=", 0) == 0) {
      o.repetitions = std::atoi(value("--reps=").c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      o.seed = std::strtoull(value("--seed=").c_str(), nullptr, 10);
    } else if (arg == "--fast") {
      o.fast = true;
    } else if (arg.rfind("--topology=", 0) == 0) {
      o.topology = value("--topology=");
    } else if (arg.rfind("--network=", 0) == 0) {
      o.network = value("--network=");
    } else if (arg.rfind("--taper=", 0) == 0) {
      o.taper = std::strtod(value("--taper=").c_str(), nullptr);
    } else {
      throw std::invalid_argument(
          "BenchOptions: unknown argument '" + std::string(arg) +
          "' (supported: --max-procs=N --reps=N --seed=N --fast "
          "--topology=flat|twolevel|fattree|dragonfly --network=aries|ideal "
          "--taper=X)");
    }
  }
  return o;
}

}  // namespace ds::util
