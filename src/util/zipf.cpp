#include "util/zipf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ds::util {

ZipfSampler::ZipfSampler(std::size_t vocabulary, double exponent)
    : exponent_(exponent) {
  assert(vocabulary > 0);
  cdf_.resize(vocabulary);
  double total = 0.0;
  for (std::size_t k = 0; k < vocabulary; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving the last CDF < 1
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t k) const noexcept {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace ds::util
