// Minimal leveled logging. Default level is Warn so tests and benches stay
// quiet; set DS_LOG=debug|info|warn|error to change it.
#pragma once

#include <sstream>
#include <string>

namespace ds::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3 };

[[nodiscard]] LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, out_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};
}  // namespace detail

[[nodiscard]] inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

}  // namespace ds::util

#define DS_LOG(level)                                        \
  if (!::ds::util::log_enabled(::ds::util::LogLevel::level)) \
    ;                                                        \
  else                                                       \
    ::ds::util::detail::LogLine(::ds::util::LogLevel::level)
