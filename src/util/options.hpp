// Options for the bench harness: DS_* environment variables (the harness
// invokes benches argument-free as `build/bench/*`, so env is the primary
// channel) plus an optional --flag=value command line that overrides them —
// `bench_fig3_model --topology=fattree --taper=4` sweeps machine models
// without recompiling or exporting.
#pragma once

#include <cstdint>
#include <string>

namespace ds::util {

[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);
[[nodiscard]] double env_double(const char* name, double fallback);
[[nodiscard]] std::string env_string(const char* name, const std::string& fallback);
[[nodiscard]] bool env_flag(const char* name, bool fallback);

/// Shared bench knobs.
struct BenchOptions {
  int max_procs = 8192;   ///< DS_BENCH_MAX_PROCS: largest P in the weak-scaling sweeps
  int repetitions = 3;    ///< DS_BENCH_REPS: runs (seeds) per configuration
  bool fast = false;      ///< DS_BENCH_FAST: shrink workloads for smoke runs
  std::uint64_t seed = 42;///< DS_BENCH_SEED: base RNG seed

  /// DS_BENCH_TOPOLOGY / --topology=<name>: machine structure for the
  /// simulated fabric — flat (default, the historical model), twolevel,
  /// fattree, or dragonfly (net::TopologyConfig::named).
  std::string topology = "flat";
  /// DS_BENCH_NETWORK / --network=<preset>: cost calibration — "aries"
  /// (default, Cray-XC40-class), "ideal" (zero-cost, semantics only), or
  /// "slim" (aries with a 4:1 oversubscribed upper tier).
  std::string network = "aries";
  /// DS_BENCH_TAPER / --taper=<x>: bandwidth taper (>= 1) on the selected
  /// topology's contended tier — node links for twolevel, the upper tier
  /// for fattree/dragonfly. 1 = full bisection; ignored by flat.
  double taper = 1.0;

  [[nodiscard]] static BenchOptions from_env();
  /// from_env(), then --max-procs= --reps= --seed= --fast --topology=
  /// --network= --taper= overrides. Throws std::invalid_argument (with the
  /// flag list) on anything unrecognized.
  [[nodiscard]] static BenchOptions parse(int argc, char** argv);
};

}  // namespace ds::util
