// Environment-variable options for the bench harness.
//
// Bench binaries must run argument-free (the harness invokes them as
// `build/bench/*`), so tunables (scale caps, repetition counts, fast mode)
// come from DS_* environment variables with conservative defaults.
#pragma once

#include <cstdint>
#include <string>

namespace ds::util {

[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);
[[nodiscard]] double env_double(const char* name, double fallback);
[[nodiscard]] std::string env_string(const char* name, const std::string& fallback);
[[nodiscard]] bool env_flag(const char* name, bool fallback);

/// Shared bench knobs.
struct BenchOptions {
  int max_procs = 8192;   ///< DS_BENCH_MAX_PROCS: largest P in the weak-scaling sweeps
  int repetitions = 3;    ///< DS_BENCH_REPS: runs (seeds) per configuration
  bool fast = false;      ///< DS_BENCH_FAST: shrink workloads for smoke runs
  std::uint64_t seed = 42;///< DS_BENCH_SEED: base RNG seed

  [[nodiscard]] static BenchOptions from_env();
};

}  // namespace ds::util
