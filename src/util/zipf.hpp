// Zipf-distributed sampling.
//
// Natural-language word frequencies are approximately Zipfian; the wordcount
// workload (paper Sec. IV-B) relies on this irregularity to create variable
// per-rank reduce load. The sampler precomputes the inverse CDF once and
// draws in O(log V).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ds::util {

/// Samples integers in [0, vocabulary) with P(k) proportional to 1/(k+1)^s.
class ZipfSampler {
 public:
  /// @param vocabulary number of distinct values (> 0)
  /// @param exponent   Zipf exponent s (1.0 is classic natural language)
  ZipfSampler(std::size_t vocabulary, double exponent);

  /// Draw one value using the supplied generator.
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t vocabulary() const noexcept { return cdf_.size(); }
  [[nodiscard]] double exponent() const noexcept { return exponent_; }

  /// Exact probability of value k (for test oracles).
  [[nodiscard]] double probability(std::size_t k) const noexcept;

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(value <= k)
  double exponent_ = 1.0;
};

}  // namespace ds::util
