#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ds::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_mean_std(double mean, double stddev, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f ± %.*f", precision, mean, precision, stddev);
  return buf;
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](std::ostringstream& out, const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };

  std::ostringstream out;
  emit_row(out, headers_);
  out << "|";
  for (const std::size_t w : widths) out << std::string(w + 2, '-') << "|";
  out << '\n';
  for (const auto& row : rows_) emit_row(out, row);
  return out.str();
}

std::string Table::to_csv() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::ostringstream line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) line << ',';
      line << cells[c];
    }
    return line.str();
  };
  std::ostringstream out;
  out << join(headers_) << '\n';
  for (const auto& row : rows_) out << join(row) << '\n';
  return out.str();
}

}  // namespace ds::util
