#include "util/rng.hpp"

#include <cmath>

namespace ds::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::for_stream(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Mix the stream id through SplitMix64 so that consecutive stream ids give
  // decorrelated generators.
  std::uint64_t sm = seed ^ (0xA3EC647659359ACDull * (stream + 1));
  return Rng{splitmix64(sm)};
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Debiased modulo (Lemire-style rejection kept simple and portable).
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return lo + static_cast<std::int64_t>(x % range);
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) noexcept {
  // Inverse CDF; guard against log(0).
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mu + sigma * cached_normal_;
  }
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mu + sigma * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double x_m, double alpha) noexcept {
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return x_m / std::pow(u, 1.0 / alpha);
}

bool Rng::bernoulli(double p) noexcept { return next_double() < p; }

}  // namespace ds::util
