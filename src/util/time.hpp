// Simulated-time representation.
//
// All virtual clocks in the simulator are integer nanoseconds. Integer time
// keeps the event engine exactly deterministic across platforms and makes
// (time, sequence) a total order with no floating-point tie ambiguity.
#pragma once

#include <cstdint>

namespace ds::util {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// Largest representable time; used as "never" sentinel.
inline constexpr SimTime kTimeInfinity = INT64_MAX;

[[nodiscard]] constexpr SimTime nanoseconds(std::int64_t n) noexcept { return n; }
[[nodiscard]] constexpr SimTime microseconds(std::int64_t u) noexcept { return u * 1'000; }
[[nodiscard]] constexpr SimTime milliseconds(std::int64_t m) noexcept { return m * 1'000'000; }
[[nodiscard]] constexpr SimTime seconds_i(std::int64_t s) noexcept { return s * 1'000'000'000; }

/// Convert a duration in (floating) seconds to SimTime, rounding to nearest ns.
[[nodiscard]] constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

/// Convert SimTime to floating seconds (for reporting only; never for ordering).
[[nodiscard]] constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) * 1e-9;
}

}  // namespace ds::util
