// Plain-text table / CSV emission for the bench harness. Each figure bench
// prints the same series the paper plots; Table renders them aligned for
// humans and as CSV for plotting.
#pragma once

#include <string>
#include <vector>

namespace ds::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; it is padded or truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Formatting helpers for numeric cells.
  [[nodiscard]] static std::string fmt(double v, int precision = 2);
  [[nodiscard]] static std::string fmt_mean_std(double mean, double stddev, int precision = 2);

  /// Aligned, pipe-separated rendering (markdown-compatible).
  [[nodiscard]] std::string to_text() const;
  /// Comma-separated rendering with a header line.
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ds::util
