// Streaming statistics used by benches (mean ± stddev over repeated runs,
// matching the paper's "average and standard deviation of ten runs") and by
// tests (distribution checks).
#pragma once

#include <cstddef>
#include <vector>

namespace ds::util {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// p in [0,1]; linear interpolation between order statistics. Copies + sorts.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Coefficient of variation convenience: stddev/mean (0 when mean == 0).
[[nodiscard]] double coefficient_of_variation(const RunningStats& s) noexcept;

}  // namespace ds::util
