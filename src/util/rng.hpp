// Deterministic pseudo-random number generation for the simulator.
//
// The simulator must be exactly reproducible for a given seed: the same seed
// yields the same event order, the same noise, the same particle movements.
// We therefore use a self-contained xoshiro256** implementation (public
// domain algorithm by Blackman & Vigna) instead of std::mt19937 + std::
// distributions, whose outputs are not specified identically across standard
// library implementations.
#pragma once

#include <array>
#include <cstdint>

namespace ds::util {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG with explicit, portable distributions.
class Rng {
 public:
  /// Seeds the full 256-bit state from one 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Derive an independent stream, e.g. one per simulated rank. The pair
  /// (seed, stream) fully determines the sequence.
  [[nodiscard]] static Rng for_stream(std::uint64_t seed, std::uint64_t stream) noexcept;

  /// Next raw 64 random bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) noexcept;

  /// Exponential with given mean (mean > 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Standard normal via Box-Muller (deterministic given state).
  [[nodiscard]] double normal(double mu, double sigma) noexcept;

  /// Lognormal: exp(normal(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed detours).
  [[nodiscard]] double pareto(double x_m, double alpha) noexcept;

  /// Bernoulli trial with probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ds::util
