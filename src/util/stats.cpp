#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ds::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 1.0) return values.back();
  const double pos = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double coefficient_of_variation(const RunningStats& s) noexcept {
  return s.mean() == 0.0 ? 0.0 : s.stddev() / s.mean();
}

}  // namespace ds::util
