#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ds::util {

namespace {
LogLevel parse_env_level() {
  const char* v = std::getenv("DS_LOG");
  if (!v) return LogLevel::Warn;
  if (std::strcmp(v, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(v, "info") == 0) return LogLevel::Info;
  if (std::strcmp(v, "error") == 0) return LogLevel::Error;
  return LogLevel::Warn;
}
LogLevel g_level = parse_env_level();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }

void log_message(LogLevel level, const std::string& msg) {
  if (!log_enabled(level)) return;
  std::fprintf(stderr, "[ds %-5s] %s\n", level_name(level), msg.c_str());
}

}  // namespace ds::util
